#include "core/analyzer.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <variant>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "semantics/deobfuscate.hpp"
#include "slicing/slicer.hpp"
#include "support/budget.hpp"
#include "support/log.hpp"
#include "support/memtrack.hpp"
#include "support/parallel.hpp"
#include "support/strings.hpp"
#include "xapk/serialize.hpp"

namespace extractocol::core {

using namespace xir;

namespace {

// '\x1f' (ASCII unit separator) never occurs in regex renderings or numeric
// renderings, so joined keys cannot collide across field boundaries.
constexpr char kSep = '\x1f';

std::string transaction_key(const sig::TransactionSignature& signature,
                            const std::string& uri_regex, const std::string& body_regex,
                            const std::string& response_regex, const StmtRef& dp_site) {
    std::string key;
    key.reserve(uri_regex.size() + body_regex.size() + response_regex.size() + 32);
    key += std::to_string(static_cast<int>(signature.method));
    key += kSep;
    key += uri_regex;
    key += kSep;
    key += body_regex;
    key += kSep;
    key += response_regex;
    key += kSep;
    key += std::to_string(static_cast<int>(signature.consumer));
    key += kSep;
    key += std::to_string(dp_site.method_index);
    key += kSep;
    key += std::to_string(dp_site.block);
    key += kSep;
    key += std::to_string(dp_site.index);
    return key;
}

std::string dependency_key(const txn::Dependency& d) {
    std::string key = std::to_string(d.from);
    key += kSep;
    key += std::to_string(d.to);
    key += kSep;
    key += d.response_field;
    key += kSep;
    key += d.request_field;
    key += kSep;
    key += d.via;
    return key;
}

void merge_unique(std::vector<std::string>& into, std::vector<std::string>&& from) {
    for (auto& value : from) {
        if (std::find(into.begin(), into.end(), value) == into.end()) {
            into.push_back(std::move(value));
        }
    }
}

}  // namespace

Analyzer::Analyzer(AnalyzerOptions options)
    : options_(std::move(options)), model_(semantics::SemanticModel::standard()) {}

AnalysisReport Analyzer::analyze(const Program& input_program) const {
    auto start = std::chrono::steady_clock::now();
    obs::MetricsSnapshot counters_before = obs::MetricsRegistry::global().snapshot();
    obs::Span analyze_span("analyze", "core");

    // One pool serves both data-parallel stages (per-site slicing and
    // per-transaction signature building). The caller participates, so the
    // pool holds jobs-1 workers; jobs <= 1 keeps everything on this thread.
    unsigned jobs = support::resolve_jobs(options_.jobs);
    support::ThreadPool pool(jobs > 1 ? jobs - 1 : 0);

    // Per-app step budget shared by the slicing and signature stages. Stage
    // costs fold in site/context order, so the exhaustion point — and the
    // degraded report — is identical for every `jobs` value.
    support::BudgetTracker budget(options_.max_total_steps);

    AnalysisReport report;
    auto end_phase = [&report](const char* name, obs::Span& span) {
        span.finish();
        report.stats.phases.push_back({name, span.seconds()});
    };

    // Library de-obfuscation pre-pass (§3.4): map renamed bundled libraries
    // back to canonical API names so the semantic model applies.
    obs::Span deobf_span("deobfuscate", "core");
    const Program* program = &input_program;
    Program deobfuscated;
    if (options_.deobfuscate_libraries) {
        auto mapping = semantics::infer_deobfuscation(input_program, model_);
        if (!mapping.classes.empty()) {
            deobfuscated = input_program;  // deep copy, then rewrite in place
            semantics::apply_deobfuscation(deobfuscated, mapping);
            program = &deobfuscated;
            log::info().kv("classes", mapping.classes.size())
                    .kv("unresolved", mapping.unresolved.size())
                << "de-obfuscated bundled library classes";
        }
    }
    end_phase("deobfuscate", deobf_span);

    report.app_name = program->app_name;
    report.stats.total_statements = program->total_statements();

    obs::Span slicing_span("slicing", "core");
    slicing::SlicerOptions slicer_options;
    slicer_options.async_heuristic = options_.async_heuristic;
    slicer_options.max_async_hops = options_.max_async_hops;
    slicer_options.max_taint_steps = options_.max_taint_steps;
    slicing::Slicer slicer(*program, model_, slicer_options);

    std::vector<StmtRef> sites;
    for (const StmtRef& site : slicer.demarcation_sites()) {
        if (!options_.class_scope.empty()) {
            const Method& method = program->method_at(site.method_index);
            if (!strings::starts_with(method.class_name, options_.class_scope)) continue;
        }
        sites.push_back(site);
    }
    report.stats.dp_sites = sites.size();

    // Audit scaffolding: one record per DP site, in site order (which is
    // jobs-independent); the per-site counts fill in as the pipeline runs.
    std::unordered_map<StmtRef, std::size_t, StmtRefHash> audit_index;
    audit_index.reserve(sites.size());
    report.audit.dp_sites.reserve(sites.size());
    for (const StmtRef& site : sites) {
        DpSiteAudit a;
        a.site = site;
        const Method& method = program->method_at(site.method_index);
        a.location = method.class_name + "." + method.name;
        if (const auto* inv = std::get_if<Invoke>(&program->statement(site))) {
            a.dp = inv->callee.class_name + "." + inv->callee.method_name;
        }
        audit_index.emplace(site, report.audit.dp_sites.size());
        report.audit.dp_sites.push_back(std::move(a));
    }

    // Each site slices independently into its own slot; the flatten below is
    // sequential and in site order, so the transaction order (and therefore
    // the report) is identical for any thread count.
    //
    // Sites past the budget cut lose their results (and their steps are not
    // charged): the cut depends only on the deterministic per-site costs.
    std::vector<char> site_budget_hit(sites.size(), 0);
    std::vector<std::vector<slicing::SlicedTransaction>> per_site(sites.size());
    {
        auto stage = budget.stage(sites.size());
        pool.for_each_index(sites.size(), [&](std::size_t i) {
            if (stage.should_skip()) return;
            std::size_t steps = 0;
            per_site[i] = slicer.slice_site(sites[i], &steps);
            stage.record(i, steps);
        });
        std::size_t cut = stage.finish();
        for (std::size_t i = cut; i < sites.size(); ++i) {
            per_site[i].clear();
            site_budget_hit[i] = 1;
        }
    }
    std::vector<slicing::SlicedTransaction> sliced;
    for (auto& txns : per_site) {
        sliced.insert(sliced.end(), std::make_move_iterator(txns.begin()),
                      std::make_move_iterator(txns.end()));
    }
    per_site.clear();
    report.stats.slice_statements = 0;
    {
        std::set<StmtRef> all;
        for (const auto& txn : sliced) {
            all.insert(txn.combined_slice.begin(), txn.combined_slice.end());
        }
        report.stats.slice_statements = all.size();
    }
    end_phase("slicing", slicing_span);

    // Signature extraction per transaction context.
    obs::Span sig_span("sig", "core");
    sig::SignatureBuilder builder(*program, slicer.callgraph(), model_);

    // Pre-filter context totals per site: the audit outcome distinguishes
    // "slicing found nothing" from "everything was filtered away".
    std::vector<std::size_t> site_total_contexts(sites.size(), 0);
    for (const auto& txn : sliced) {
        auto it = audit_index.find(txn.dp_site);
        if (it != audit_index.end()) ++site_total_contexts[it->second];
    }

    // Extractocol does not model Android intents (§4): transactions whose
    // only entry is an intent handler are invisible to the analysis. Drop
    // them here — they still appear in fuzzing traces, reproducing the
    // coverage gap of §5.1.
    std::size_t contexts_before_filter = sliced.size();
    {
        std::vector<slicing::SlicedTransaction> kept;
        kept.reserve(sliced.size());
        for (auto& t : sliced) {
            if (t.trigger_kind == EventKind::kOnIntent &&
                !strings::starts_with(t.trigger, "unknown:")) {
                auto it = audit_index.find(t.dp_site);
                if (it != audit_index.end()) {
                    ++report.audit.dp_sites[it->second].dropped_intent_contexts;
                }
                continue;
            }
            kept.push_back(std::move(t));
        }
        sliced = std::move(kept);
    }
    // Count contexts only after the intent filter so the stat agrees with
    // the transactions actually reported; the filtered-out §5.1 coverage gap
    // is kept as its own stat.
    report.stats.contexts = sliced.size();
    report.stats.dropped_intent_contexts = contexts_before_filter - sliced.size();

    struct Built {
        std::size_t sliced_index;
        sig::TransactionSignature signature;
    };
    std::vector<std::optional<sig::TransactionSignature>> signatures(sliced.size());
    std::vector<char> build_capped(sliced.size(), 0);
    {
        auto stage = budget.stage(sliced.size());
        pool.for_each_index(sliced.size(), [&](std::size_t i) {
            if (stage.should_skip()) return;
            // Same site key the slicer used for its kSlice scope, so both
            // stages merge into one --profile row per DP site.
            std::string profile_key;
            if (obs::Profiler::global().enabled()) {
                const StmtRef& site = sliced[i].dp_site;
                auto audit_it = audit_index.find(site);
                if (audit_it != audit_index.end()) {
                    const DpSiteAudit& a = report.audit.dp_sites[audit_it->second];
                    profile_key = obs::profile_site_key(program->app_name, a.dp, a.location,
                                                        site.method_index, site.block,
                                                        site.index);
                }
            }
            obs::ProfileScope profile_scope(std::move(profile_key),
                                            obs::ProfileScope::Stage::kSig);
            sig::BuildRequest request;
            request.dp_site = sliced[i].dp_site;
            request.dp = sliced[i].dp;
            request.context = sliced[i].context;
            request.slice = &sliced[i].combined_slice;
            request.max_steps = options_.max_sig_steps;
            sig::BuildStats build_stats;
            signatures[i] = builder.build(request, &build_stats);
            build_capped[i] = build_stats.step_capped ? 1 : 0;
            stage.record(i, build_stats.steps);
        });
        std::size_t cut = stage.finish();
        // Contexts past the cut lose their signatures; their DP sites degrade
        // to the budget_exhausted outcome. A context *kept* but step-capped
        // (per-build cap) keeps its partial signature — its unknown leaves
        // carry the budget_exhausted reason — and flags its site too.
        for (std::size_t i = cut; i < sliced.size(); ++i) signatures[i].reset();
        for (std::size_t i = 0; i < sliced.size(); ++i) {
            if (i >= cut || build_capped[i]) {
                auto it = audit_index.find(sliced[i].dp_site);
                if (it != audit_index.end()) site_budget_hit[it->second] = 1;
            }
        }
    }
    std::vector<Built> built;
    for (std::size_t i = 0; i < sliced.size(); ++i) {
        if (!signatures[i]) continue;
        built.push_back({i, std::move(*signatures[i])});
    }
    signatures.clear();

    for (const auto& b : built) {
        auto it = audit_index.find(sliced[b.sliced_index].dp_site);
        if (it != audit_index.end()) ++report.audit.dp_sites[it->second].built;
    }
    for (std::size_t i = 0; i < report.audit.dp_sites.size(); ++i) {
        DpSiteAudit& a = report.audit.dp_sites[i];
        a.contexts = site_total_contexts[i] - a.dropped_intent_contexts;
        if (site_budget_hit[i]) {
            // Budget exhaustion takes precedence: the site's results were
            // dropped or truncated, so any other outcome would be misleading.
            a.outcome = "budget_exhausted";
        } else if (site_total_contexts[i] == 0) {
            a.outcome = "empty_slice";
        } else if (a.contexts == 0) {
            a.outcome = "dropped_intent";
        } else if (a.built == 0) {
            a.outcome = "build_failed";
        } else if (a.built < a.contexts) {
            a.outcome = "partial";
        } else {
            a.outcome = "complete";
        }
    }
    end_phase("sig", sig_span);

    // Dependencies are computed over the sliced transactions, then remapped
    // onto the deduplicated report records.
    obs::Span txn_span("txn", "core");
    txn::DependencyAnalyzer deps(*program, slicer.callgraph(), model_, slicer.engine());
    std::vector<slicing::SlicedTransaction> built_sliced;
    built_sliced.reserve(built.size());
    for (const auto& b : built) built_sliced.push_back(sliced[b.sliced_index]);
    // An exhausted budget skips dependency analysis outright: the surviving
    // transaction set is already partial, and the phase's taint runs would
    // charge nothing (keeping the degraded report cheap is the point).
    std::vector<txn::Dependency> raw_edges;
    if (!budget.exhausted()) raw_edges = deps.analyze(built_sliced);
    end_phase("txn", txn_span);

    // Deduplicate: one report transaction per distinct signature. The merge
    // stays sequential (it fixes the report order), so it is keyed by hash —
    // an O(n²) scan here would become the serial bottleneck of the parallel
    // pipeline.
    obs::Span dedup_span("dedup", "core");
    std::vector<std::size_t> report_index_of(built.size());
    std::unordered_map<std::string, std::size_t> index_by_key;
    index_by_key.reserve(built.size());
    for (std::size_t bi = 0; bi < built.size(); ++bi) {
        const auto& signature = built[bi].signature;
        const auto& source = sliced[built[bi].sliced_index];
        std::string uri_regex = signature.uri.to_regex();
        std::string body_regex = signature.has_body ? signature.body.to_regex() : "";
        std::string response_regex =
            signature.has_response_body ? signature.response_body.to_regex() : "";

        std::string key =
            transaction_key(signature, uri_regex, body_regex, response_regex,
                            source.dp_site);
        auto [slot, inserted] = index_by_key.emplace(std::move(key),
                                                     report.transactions.size());
        std::size_t found = slot->second;
        auto tags = deps.tags(source);
        if (inserted) {
            ReportTransaction record;
            record.signature = signature;
            record.uri_regex = std::move(uri_regex);
            record.body_regex = std::move(body_regex);
            record.response_regex = std::move(response_regex);
            record.dp_site = source.dp_site;
            record.triggers.push_back(source.trigger);
            record.trigger_kinds.push_back(source.trigger_kind);
            for (auto& c : tags.consumers) record.consumers.push_back(std::move(c));
            if (record.signature.consumer != semantics::ConsumerKind::kNone) {
                std::string name =
                    record.signature.consumer == semantics::ConsumerKind::kMediaPlayer
                        ? "media_player"
                        : "image_view";
                if (std::find(record.consumers.begin(), record.consumers.end(), name) ==
                    record.consumers.end()) {
                    record.consumers.push_back(std::move(name));
                }
            }
            record.sources = std::move(tags.sources);
            report.transactions.push_back(std::move(record));
        } else {
            ReportTransaction& record = report.transactions[found];
            record.context_count += 1;
            // Duplicate contexts still contribute their behavior tags: a
            // context reached from a different event may feed the request
            // from new origins or consume the response in a new sink.
            merge_unique(record.consumers, std::move(tags.consumers));
            merge_unique(record.sources, std::move(tags.sources));
            // triggers/trigger_kinds are parallel vectors; the same trigger
            // string can arrive with a different EventKind, so uniqueness is
            // over the (trigger, kind) pair or the two would desynchronize.
            bool seen = false;
            for (std::size_t ti = 0; ti < record.triggers.size(); ++ti) {
                if (record.triggers[ti] == source.trigger &&
                    record.trigger_kinds[ti] == source.trigger_kind) {
                    seen = true;
                    break;
                }
            }
            if (!seen) {
                record.triggers.push_back(source.trigger);
                record.trigger_kinds.push_back(source.trigger_kind);
            }
        }
        report_index_of[bi] = found;
    }

    std::unordered_set<std::string> seen_edges;
    seen_edges.reserve(raw_edges.size());
    for (const auto& edge : raw_edges) {
        txn::Dependency mapped = edge;
        mapped.from = report_index_of[edge.from];
        mapped.to = report_index_of[edge.to];
        if (mapped.from == mapped.to) continue;
        if (seen_edges.insert(dependency_key(mapped)).second) {
            report.dependencies.push_back(std::move(mapped));
        }
    }
    end_phase("dedup", dedup_span);

    // Imprecision taxonomy over the final report: count unknown leaves by
    // reason in the signature trees actually emitted. Walking the report
    // (rather than reading counters) keeps the tally deterministic under
    // concurrent analyses and exact after deduplication.
    for (const auto& t : report.transactions) {
        auto tally = [&report](const sig::Sig& s) {
            report.audit.unknown_total +=
                s.count_unknown_reasons(report.audit.unknown_reasons);
        };
        tally(t.signature.uri);
        for (const auto& [hname, hvalue] : t.signature.headers) {
            tally(hname);
            tally(hvalue);
        }
        if (t.signature.has_body) tally(t.signature.body);
        if (t.signature.has_response_body) tally(t.signature.response_body);
    }
    std::sort(report.audit.unknown_reasons.begin(), report.audit.unknown_reasons.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    report.stats.budget_steps_used = budget.steps_used();
    report.stats.budget_exhausted = budget.exhausted();
    // Budget counters exist only when a budget is set: default runs emit no
    // new counter names, so the committed bench baseline stays valid.
    if (budget.limited()) {
        obs::counter("budget.steps_used").add(budget.steps_used());
        if (budget.exhausted()) {
            obs::counter("budget.exhausted_apps").add(1);
            log::warn().kv("max_total_steps", budget.max_total_steps())
                    .kv("steps_used", budget.steps_used())
                << "analysis budget exhausted; report is partial";
        }
    }

    analyze_span.finish();
    report.stats.analysis_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    report.stats.counters =
        obs::MetricsRegistry::global().snapshot().delta_since(counters_before).counters;

    // Per-symbol unmodeled-API counts travel as counters (every recording
    // site is a plain obs::counter bump); here they are pulled out of the
    // run's delta into the audit table so --metrics stays readable.
    constexpr std::string_view kUnmodeledPrefix = "audit.unmodeled_api.";
    auto& counters = report.stats.counters;
    for (auto it = counters.begin(); it != counters.end();) {
        if (strings::starts_with(it->first, kUnmodeledPrefix)) {
            report.audit.unmodeled_apis.emplace_back(
                it->first.substr(kUnmodeledPrefix.size()), it->second);
            it = counters.erase(it);
        } else {
            ++it;
        }
    }
    std::sort(report.audit.unmodeled_apis.begin(), report.audit.unmodeled_apis.end(),
              [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second > b.second;
                  return a.first < b.first;
              });

    // An exhausted budget makes the *work performed* scheduling-dependent:
    // with several workers, units past the cut may start (and bump engine
    // counters) before the index-ordered fold detects exhaustion, even though
    // their results are always dropped. The report must stay byte-identical
    // for every jobs value, so a budget-exhausted run keeps only the
    // deterministic budget.* deltas and drops the counter-derived unmodeled
    // table; the global registry still holds the exact aggregates.
    if (budget.exhausted()) {
        std::erase_if(report.stats.counters, [](const auto& entry) {
            return !strings::starts_with(entry.first, "budget.");
        });
        report.audit.unmodeled_apis.clear();
    }
    return report;
}

Result<AnalysisReport> Analyzer::analyze_xapk(std::string_view xapk_text) const {
    obs::Span parse_span("xapk.parse", "xapk");
    auto program = xapk::parse_xapk(xapk_text);
    parse_span.finish();
    if (!program.ok()) return program.error();
    AnalysisReport report = analyze(program.value());
    // Fold the parse into the report's timing view so the phase table covers
    // the whole .xapk-to-report path.
    report.stats.phases.insert(report.stats.phases.begin(),
                               {"xapk.parse", parse_span.seconds()});
    report.stats.analysis_seconds += parse_span.seconds();
    return report;
}

std::vector<BatchItem> Analyzer::analyze_batch(std::vector<BatchInput> inputs) const {
    std::vector<BatchItem> items(inputs.size());
    if (inputs.empty()) return items;

    // Split the thread budget across apps first, then inside each app:
    // app-level parallelism scales better than intra-app (few DP sites per
    // app), and the per-slot item fill keeps the output in input order.
    unsigned jobs = support::resolve_jobs(options_.jobs);
    auto app_jobs = static_cast<unsigned>(
        std::min<std::size_t>(jobs, inputs.size()));
    AnalyzerOptions inner_options = options_;
    inner_options.jobs = std::max(1u, jobs / std::max(1u, app_jobs));
    Analyzer inner(std::move(inner_options));

    // Per-app peak attribution needs non-overlapping measurement windows, so
    // it is only meaningful when apps run one at a time (same caveat as the
    // per-app counter deltas, which concurrent batches clear).
    namespace memtrack = support::memtrack;
    const bool track_per_app = app_jobs == 1 && memtrack::enabled();

    std::atomic<std::size_t> done{0};
    support::parallel_for(app_jobs, inputs.size(), [&](std::size_t i) {
        items[i].file = inputs[i].file;
        std::uint64_t mem_base = 0;
        if (track_per_app) {
            memtrack::reset_peak();
            mem_base = memtrack::live_bytes();
        }
        // The exception boundary of batch mode: without it the thread pool
        // rethrows the lowest-index error and one bad app kills the batch.
        try {
            auto result = inner.analyze_xapk(inputs[i].text);
            if (result.ok()) {
                items[i].report = std::move(result).take();
            } else {
                items[i].error = result.error().message;
            }
        } catch (const std::exception& e) {
            items[i].error = std::string("analysis failed: ") + e.what();
        } catch (...) {
            items[i].error = "analysis failed: unknown error";
        }
        // The text was only needed for the parse; release it now so the
        // batch's resident set shrinks as it drains instead of holding
        // every input until the end (workers each touch their own slot).
        std::string().swap(inputs[i].text);
        if (!items[i].ok() && items[i].error.empty()) {
            items[i].error = "analysis failed";
        }
        if (track_per_app && items[i].report) {
            std::uint64_t peak = memtrack::peak_bytes();
            items[i].report->stats.peak_bytes = peak > mem_base ? peak - mem_base : 0;
        }
        if (options_.batch_progress) {
            options_.batch_progress(done.fetch_add(1, std::memory_order_relaxed) + 1,
                                    inputs.size());
        }
    });
    // Count contained failures sequentially so the counter total is exact
    // and jobs-independent.
    for (const auto& item : items) {
        if (!item.ok()) obs::counter("isolation.contained_errors").add(1);
    }
    return items;
}

obs::AppRunRecord telemetry_record(const BatchItem& item,
                                   const AnalyzerOptions& options) {
    obs::AppRunRecord rec;
    rec.file = item.file;
    if (!item.ok()) {
        rec.outcome = "error";
        rec.error = item.error;
        return rec;
    }
    const AnalysisReport& report = *item.report;
    if (report.stats.budget_exhausted) {
        rec.outcome = "budget_exhausted";
    } else {
        rec.outcome = "complete";
        for (const DpSiteAudit& a : report.audit.dp_sites) {
            if (a.outcome != "complete") {
                rec.outcome = "partial";
                break;
            }
        }
    }
    rec.wall_seconds = report.stats.analysis_seconds;
    rec.phase_seconds.reserve(report.stats.phases.size());
    for (const PhaseTiming& p : report.stats.phases) {
        rec.phase_seconds.emplace_back(p.name, p.seconds);
    }
    rec.steps_used = report.stats.budget_steps_used;
    if (options.max_total_steps > 0) {
        rec.budget_fraction = static_cast<double>(report.stats.budget_steps_used) /
                              static_cast<double>(options.max_total_steps);
    }
    rec.peak_bytes = report.stats.peak_bytes;
    rec.transactions = report.transactions.size();
    rec.dependencies = report.dependencies.size();
    return rec;
}

// ------------------------------------------------------------ tabulation --

std::size_t AnalysisReport::count_method(http::Method method) const {
    return static_cast<std::size_t>(
        std::count_if(transactions.begin(), transactions.end(),
                      [method](const ReportTransaction& t) {
                          return t.signature.method == method;
                      }));
}

std::size_t AnalysisReport::count_body_kind(http::BodyKind kind, bool response) const {
    std::size_t n = 0;
    for (const auto& t : transactions) {
        if (response) {
            if (t.signature.has_response_body && t.signature.response_kind == kind) ++n;
        } else {
            if (t.signature.has_body && t.signature.body_kind == kind) ++n;
        }
    }
    return n;
}

std::size_t AnalysisReport::pair_count() const {
    return static_cast<std::size_t>(
        std::count_if(transactions.begin(), transactions.end(),
                      [](const ReportTransaction& t) { return t.is_paired(); }));
}

std::size_t AnalysisReport::request_payload_count() const {
    std::set<std::string> unique;
    for (const auto& t : transactions) {
        if (t.signature.has_body) unique.insert(t.body_regex);
    }
    return unique.size();
}

std::vector<std::string> AnalysisReport::keywords(bool response) const {
    std::set<std::string> unique;
    for (const auto& t : transactions) {
        if (response) {
            if (t.signature.has_response_body) {
                for (auto& k : t.signature.response_body.keywords()) {
                    unique.insert(std::move(k));
                }
            }
        } else {
            if (t.signature.has_body) {
                for (auto& k : t.signature.body.keywords()) unique.insert(std::move(k));
            }
            // Query-string keys embedded in the URI count as request keywords.
            for (auto& k : t.signature.uri.keywords()) unique.insert(std::move(k));
        }
    }
    return {unique.begin(), unique.end()};
}

std::string AnalysisReport::to_text() const {
    std::string out;
    out += "App: " + app_name + "\n";
    out += "Transactions: " + std::to_string(transactions.size()) +
           "  (pairs: " + std::to_string(pair_count()) + ")\n";
    for (std::size_t i = 0; i < transactions.size(); ++i) {
        const auto& t = transactions[i];
        out += "#" + std::to_string(i + 1) + " " +
               std::string(http::method_name(t.signature.method)) + " " + t.uri_regex +
               "\n";
        if (t.signature.has_body) {
            out += "    body[" + std::string(http::body_kind_name(t.signature.body_kind)) +
                   "]: " + t.body_regex + "\n";
        }
        for (const auto& [name, value] : t.signature.headers) {
            out += "    header: " + name.to_regex() + ": " + value.to_regex() + "\n";
        }
        if (t.signature.has_response_body) {
            out += "    response[" +
                   std::string(http::body_kind_name(t.signature.response_kind)) +
                   "]: " + t.response_regex + "\n";
        }
        if (!t.consumers.empty()) {
            out += "    consumed-by: " + strings::join(t.consumers, ", ") + "\n";
        }
        if (!t.sources.empty()) {
            out += "    originates-from: " + strings::join(t.sources, ", ") + "\n";
        }
        if (!t.triggers.empty()) {
            out += "    triggers: " + strings::join(t.triggers, ", ") + "\n";
        }
    }
    if (!dependencies.empty()) {
        out += "Dependency graph:\n";
        for (const auto& d : dependencies) {
            out += "  #" + std::to_string(d.from + 1) + "." +
                   (d.response_field.empty() ? "<body>" : d.response_field) + " -> #" +
                   std::to_string(d.to + 1) + "." + d.request_field;
            if (!d.via.empty()) out += " (via " + d.via + ")";
            out += "\n";
        }
    }
    return out;
}

text::Json AnalysisReport::to_json() const {
    text::Json doc = text::Json::object();
    doc.set("app", text::Json(app_name));
    text::Json txns = text::Json::array();
    for (const auto& t : transactions) {
        text::Json obj = text::Json::object();
        obj.set("method", text::Json(std::string(http::method_name(t.signature.method))));
        obj.set("uri", text::Json(t.uri_regex));
        if (t.signature.has_body) {
            obj.set("body_kind",
                    text::Json(std::string(http::body_kind_name(t.signature.body_kind))));
            obj.set("body", text::Json(t.body_regex));
        }
        if (t.signature.has_response_body) {
            obj.set("response_kind", text::Json(std::string(http::body_kind_name(
                                         t.signature.response_kind))));
            obj.set("response", text::Json(t.response_regex));
            obj.set("response_schema", t.signature.response_body.to_json_schema());
        }
        if (!t.consumers.empty()) {
            text::Json arr = text::Json::array();
            for (const auto& c : t.consumers) arr.push_back(text::Json(c));
            obj.set("consumers", std::move(arr));
        }
        text::Json prov = text::Json::object();
        prov.set("uri", t.signature.uri.to_provenance_json());
        if (!t.signature.headers.empty()) {
            text::Json headers = text::Json::array();
            for (const auto& [hname, hvalue] : t.signature.headers) {
                text::Json h = text::Json::object();
                h.set("name", hname.to_provenance_json());
                h.set("value", hvalue.to_provenance_json());
                headers.push_back(std::move(h));
            }
            prov.set("headers", std::move(headers));
        }
        if (t.signature.has_body) {
            prov.set("body", t.signature.body.to_provenance_json());
        }
        if (t.signature.has_response_body) {
            prov.set("response", t.signature.response_body.to_provenance_json());
        }
        obj.set("provenance", std::move(prov));
        txns.push_back(std::move(obj));
    }
    doc.set("transactions", std::move(txns));
    text::Json edges = text::Json::array();
    for (const auto& d : dependencies) {
        text::Json obj = text::Json::object();
        obj.set("from", text::Json(static_cast<std::int64_t>(d.from)));
        obj.set("response_field", text::Json(d.response_field));
        obj.set("to", text::Json(static_cast<std::int64_t>(d.to)));
        obj.set("request_field", text::Json(d.request_field));
        if (!d.via.empty()) obj.set("via", text::Json(d.via));
        edges.push_back(std::move(obj));
    }
    doc.set("dependencies", std::move(edges));

    text::Json metrics = text::Json::object();
    metrics.set("analysis_seconds", text::Json(stats.analysis_seconds));
    metrics.set("total_statements",
                text::Json(static_cast<std::int64_t>(stats.total_statements)));
    metrics.set("slice_statements",
                text::Json(static_cast<std::int64_t>(stats.slice_statements)));
    metrics.set("dp_sites", text::Json(static_cast<std::int64_t>(stats.dp_sites)));
    metrics.set("contexts", text::Json(static_cast<std::int64_t>(stats.contexts)));
    metrics.set("dropped_intent_contexts",
                text::Json(static_cast<std::int64_t>(stats.dropped_intent_contexts)));
    metrics.set("budget_steps_used",
                text::Json(static_cast<std::int64_t>(stats.budget_steps_used)));
    metrics.set("budget_exhausted", text::Json(stats.budget_exhausted));
    text::Json phases = text::Json::object();
    for (const auto& p : stats.phases) phases.set(p.name, text::Json(p.seconds));
    metrics.set("phases", std::move(phases));
    text::Json counter_obj = text::Json::object();
    for (const auto& [name, value] : stats.counters) {
        counter_obj.set(name, text::Json(static_cast<std::int64_t>(value)));
    }
    metrics.set("counters", std::move(counter_obj));
    doc.set("metrics", std::move(metrics));
    doc.set("audit", audit.to_json());
    return doc;
}

// ----------------------------------------------------------------- audit --

namespace {

const char* value_type_name(sig::Sig::ValueType type) {
    switch (type) {
        case sig::Sig::ValueType::kString: return "string";
        case sig::Sig::ValueType::kInt: return "int";
        case sig::Sig::ValueType::kBool: return "bool";
        case sig::Sig::ValueType::kAny: return "any";
    }
    return "any";
}

/// Indented provenance-tree rendering of one signature (--explain).
void append_sig_tree(std::string& out, const sig::Sig& s, int indent) {
    out.append(static_cast<std::size_t>(indent) * 2, ' ');
    auto origin_suffix = [&s]() {
        return s.origin.empty() ? std::string() : "  <- " + s.origin;
    };
    switch (s.kind) {
        case sig::Sig::Kind::kConst:
            out += "const \"" + s.text + "\"" + origin_suffix() + "\n";
            return;
        case sig::Sig::Kind::kUnknown:
            out += std::string("unknown[") + value_type_name(s.value_type) + "]";
            if (s.reason != sig::UnknownReason::kUnspecified) {
                out += std::string(" reason=") + sig::unknown_reason_name(s.reason);
            }
            out += origin_suffix() + "\n";
            return;
        case sig::Sig::Kind::kConcat: out += "concat" + origin_suffix() + "\n"; break;
        case sig::Sig::Kind::kAlt: out += "alt" + origin_suffix() + "\n"; break;
        case sig::Sig::Kind::kRep: out += "rep" + origin_suffix() + "\n"; break;
        case sig::Sig::Kind::kJsonObject: {
            out += "json_object" + origin_suffix() + "\n";
            for (const auto& [key, value] : s.members) {
                out.append(static_cast<std::size_t>(indent + 1) * 2, ' ');
                out += "\"" + key + "\":\n";
                append_sig_tree(out, value, indent + 2);
            }
            return;
        }
        case sig::Sig::Kind::kJsonArray:
            out += std::string("json_array") + (s.repeated ? " repeated" : "") +
                   origin_suffix() + "\n";
            break;
        case sig::Sig::Kind::kXmlElement: {
            out += "xml <" + s.text + ">" + origin_suffix() + "\n";
            for (const auto& [name, value] : s.members) {
                out.append(static_cast<std::size_t>(indent + 1) * 2, ' ');
                out += "@" + name + ":\n";
                append_sig_tree(out, value, indent + 2);
            }
            for (const auto& child : s.children) append_sig_tree(out, child, indent + 1);
            for (const auto& txt : s.xml_text) append_sig_tree(out, txt, indent + 1);
            return;
        }
    }
    for (const auto& child : s.children) append_sig_tree(out, child, indent + 1);
}

std::string site_label(const StmtRef& site) {
    return std::to_string(site.method_index) + ":" + std::to_string(site.block) + ":" +
           std::to_string(site.index);
}

}  // namespace

std::size_t AnalysisAudit::count_outcome(std::string_view outcome) const {
    return static_cast<std::size_t>(
        std::count_if(dp_sites.begin(), dp_sites.end(),
                      [outcome](const DpSiteAudit& a) { return a.outcome == outcome; }));
}

text::Json AnalysisAudit::to_json() const {
    text::Json doc = text::Json::object();
    doc.set("unknown_total", text::Json(static_cast<std::int64_t>(unknown_total)));
    text::Json reasons = text::Json::object();
    for (const auto& [name, count] : unknown_reasons) {
        reasons.set(name, text::Json(static_cast<std::int64_t>(count)));
    }
    doc.set("unknown_reasons", std::move(reasons));
    text::Json sites = text::Json::array();
    for (const auto& a : dp_sites) {
        text::Json obj = text::Json::object();
        obj.set("dp", text::Json(a.dp));
        obj.set("location", text::Json(a.location));
        obj.set("site", text::Json(site_label(a.site)));
        obj.set("outcome", text::Json(a.outcome));
        obj.set("contexts", text::Json(static_cast<std::int64_t>(a.contexts)));
        obj.set("dropped_intent_contexts",
                text::Json(static_cast<std::int64_t>(a.dropped_intent_contexts)));
        obj.set("built", text::Json(static_cast<std::int64_t>(a.built)));
        sites.push_back(std::move(obj));
    }
    doc.set("dp_sites", std::move(sites));
    text::Json apis = text::Json::array();
    for (const auto& [name, calls] : unmodeled_apis) {
        text::Json obj = text::Json::object();
        obj.set("api", text::Json(name));
        obj.set("calls", text::Json(static_cast<std::int64_t>(calls)));
        apis.push_back(std::move(obj));
    }
    doc.set("unmodeled_apis", std::move(apis));
    return doc;
}

std::string AnalysisAudit::to_text() const {
    std::string out = "Audit: analysis quality\n";
    out += "DP sites: " + std::to_string(dp_sites.size());
    const char* kOutcomes[] = {"complete",       "partial",     "build_failed",
                               "dropped_intent", "empty_slice", "budget_exhausted"};
    std::string breakdown;
    for (const char* outcome : kOutcomes) {
        std::size_t n = count_outcome(outcome);
        if (n == 0) continue;
        if (!breakdown.empty()) breakdown += ", ";
        breakdown += std::string(outcome) + " " + std::to_string(n);
    }
    if (!breakdown.empty()) out += "  (" + breakdown + ")";
    out += "\n";
    for (const auto& a : dp_sites) {
        out += "  " + a.dp + " at " + a.location + ": " + a.outcome +
               " (contexts=" + std::to_string(a.contexts) +
               ", built=" + std::to_string(a.built);
        if (a.dropped_intent_contexts > 0) {
            out += ", dropped_intent=" + std::to_string(a.dropped_intent_contexts);
        }
        out += ")\n";
    }
    out += "Unknown signature segments: " + std::to_string(unknown_total) + "\n";
    std::size_t reason_width = 0;
    for (const auto& [name, count] : unknown_reasons) {
        reason_width = std::max(reason_width, name.size());
    }
    for (const auto& [name, count] : unknown_reasons) {
        out += "  " + name + std::string(reason_width - name.size() + 2, ' ') +
               std::to_string(count) + "\n";
    }
    out += "Top unmodeled APIs:\n";
    if (unmodeled_apis.empty()) {
        out += "  (none)\n";
        return out;
    }
    constexpr std::size_t kTop = 20;
    std::size_t shown = std::min(unmodeled_apis.size(), kTop);
    std::size_t api_width = 0;
    for (std::size_t i = 0; i < shown; ++i) {
        api_width = std::max(api_width, unmodeled_apis[i].first.size());
    }
    for (std::size_t i = 0; i < shown; ++i) {
        const auto& [name, calls] = unmodeled_apis[i];
        out += "  " + name + std::string(api_width - name.size() + 2, ' ') +
               std::to_string(calls) + "\n";
    }
    if (unmodeled_apis.size() > kTop) {
        out += "  (+" + std::to_string(unmodeled_apis.size() - kTop) + " more)\n";
    }
    return out;
}

std::string AnalysisReport::explain(std::size_t index) const {
    if (index >= transactions.size()) return {};
    const ReportTransaction& t = transactions[index];
    std::string out = "Transaction #" + std::to_string(index + 1) + ": " +
                      std::string(http::method_name(t.signature.method)) + " " +
                      t.uri_regex + "\n";
    out += "uri:\n";
    append_sig_tree(out, t.signature.uri, 1);
    for (const auto& [hname, hvalue] : t.signature.headers) {
        out += "header " + hname.to_regex() + ":\n";
        append_sig_tree(out, hvalue, 1);
    }
    if (t.signature.has_body) {
        out += "body[" + std::string(http::body_kind_name(t.signature.body_kind)) + "]:\n";
        append_sig_tree(out, t.signature.body, 1);
    }
    if (t.signature.has_response_body) {
        out += "response[" +
               std::string(http::body_kind_name(t.signature.response_kind)) + "]:\n";
        append_sig_tree(out, t.signature.response_body, 1);
    }
    return out;
}

}  // namespace extractocol::core
