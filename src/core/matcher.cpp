#include "core/matcher.hpp"

#include <algorithm>
#include <set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"
#include "text/uri.hpp"
#include "text/xml.hpp"

namespace extractocol::core {

using http::BodyKind;

namespace {

void json_keywords(const text::Json& v, std::vector<std::string>& out) {
    if (v.is_object()) {
        for (const auto& [k, value] : v.members()) {
            out.push_back(k);
            json_keywords(value, out);
        }
    } else if (v.is_array()) {
        for (const auto& item : v.items()) json_keywords(item, out);
    }
}

void xml_keywords(const text::XmlElement& e, std::vector<std::string>& out) {
    out.push_back(e.name);
    for (const auto& [k, v] : e.attributes) {
        (void)v;
        out.push_back(k);
    }
    for (const auto& c : e.children) xml_keywords(*c, out);
}

void account_json(const text::Json& v, const std::set<std::string>& keywords,
                  ByteAccounting& acc, bool parent_known) {
    if (v.is_object()) {
        for (const auto& [k, value] : v.members()) {
            bool known = keywords.count(k) > 0;
            if (known) {
                acc.key_bytes += k.size();
            } else {
                acc.wildcard_bytes += k.size();
            }
            account_json(value, keywords, acc, known);
        }
    } else if (v.is_array()) {
        for (const auto& item : v.items()) account_json(item, keywords, acc, parent_known);
    } else {
        std::size_t bytes = v.is_string() ? v.as_string().size() : v.dump().size();
        if (parent_known) {
            acc.value_bytes += bytes;
        } else {
            acc.wildcard_bytes += bytes;
        }
    }
}

void account_xml(const text::XmlElement& e, const std::set<std::string>& keywords,
                 ByteAccounting& acc) {
    bool known = keywords.count(e.name) > 0;
    if (known) {
        acc.key_bytes += e.name.size();
    } else {
        acc.wildcard_bytes += e.name.size();
    }
    for (const auto& [k, v] : e.attributes) {
        if (keywords.count(k) > 0) {
            acc.key_bytes += k.size();
            acc.value_bytes += v.size();
        } else {
            acc.wildcard_bytes += k.size() + v.size();
        }
    }
    if (!e.text.empty()) {
        if (known) {
            acc.value_bytes += e.text.size();
        } else {
            acc.wildcard_bytes += e.text.size();
        }
    }
    for (const auto& c : e.children) account_xml(*c, keywords, acc);
}

void account_query(const std::vector<text::QueryParam>& params,
                   const std::set<std::string>& keywords, ByteAccounting& acc) {
    for (const auto& p : params) {
        if (keywords.count(p.key) > 0) {
            acc.key_bytes += p.key.size();
            acc.value_bytes += p.value.size();
        } else {
            acc.wildcard_bytes += p.key.size() + p.value.size();
        }
    }
}

/// Structural response match: every keyword the signature demands appears in
/// the payload (responses legitimately contain keys the app never reads, so
/// a full-payload regex match is the wrong test — §5.1).
bool keywords_subset(const std::vector<std::string>& demanded, BodyKind kind,
                     const std::string& body) {
    if (demanded.empty()) return true;
    auto present = TraceMatcher::payload_keywords(kind, body);
    std::set<std::string> have(present.begin(), present.end());
    return std::all_of(demanded.begin(), demanded.end(),
                       [&have](const std::string& k) { return have.count(k) > 0; });
}

}  // namespace

TraceMatcher::TraceMatcher(const AnalysisReport& report) : report_(&report) {
    obs::Span span("sig.regex_compile", "sig");
    obs::Counter& compiles = obs::counter("sig.regex_compiles");
    compiled_.reserve(report.transactions.size());
    for (const auto& t : report.transactions) {
        CompiledSignature cs;
        auto uri = text::Regex::compile(t.uri_regex);
        compiles.add(1);
        if (uri.ok()) {
            cs.uri = std::move(uri).take();
        } else {
            log::warn().kv("regex", t.uri_regex).kv("error", uri.error().message)
                << "signature regex failed to compile";
        }
        if (!t.body_regex.empty()) {
            auto body = text::Regex::compile(t.body_regex);
            compiles.add(1);
            if (body.ok()) cs.body = std::move(body).take();
        }
        compiled_.push_back(std::move(cs));
    }
    span.finish();
    obs::histogram("sig.regex_compile_ms").observe(span.seconds() * 1000.0);
}

std::vector<std::string> TraceMatcher::payload_keywords(BodyKind kind,
                                                        const std::string& body) {
    std::vector<std::string> out;
    switch (kind) {
        case BodyKind::kJson: {
            auto doc = text::parse_json(body);
            if (doc.ok()) json_keywords(doc.value(), out);
            break;
        }
        case BodyKind::kXml: {
            auto doc = text::parse_xml(body);
            if (doc.ok()) xml_keywords(*doc.value(), out);
            break;
        }
        case BodyKind::kQueryString: {
            for (const auto& p : text::parse_query(body)) out.push_back(p.key);
            break;
        }
        default: break;
    }
    return out;
}

ByteAccounting TraceMatcher::account_payload(const std::vector<std::string>& sig_keywords,
                                             BodyKind kind, const std::string& body) {
    ByteAccounting acc;
    std::set<std::string> keywords(sig_keywords.begin(), sig_keywords.end());
    switch (kind) {
        case BodyKind::kJson: {
            auto doc = text::parse_json(body);
            if (doc.ok()) account_json(doc.value(), keywords, acc, false);
            break;
        }
        case BodyKind::kXml: {
            auto doc = text::parse_xml(body);
            if (doc.ok()) account_xml(*doc.value(), keywords, acc);
            break;
        }
        case BodyKind::kQueryString:
            account_query(text::parse_query(body), keywords, acc);
            break;
        default:
            acc.wildcard_bytes += body.size();
    }
    return acc;
}

std::optional<MatchOutcome> TraceMatcher::match_signature(
    std::size_t index, const http::Transaction& txn, const std::string& uri_text) const {
    const ReportTransaction& candidate = report_->transactions[index];
    if (candidate.signature.method != txn.request.method) return std::nullopt;
    if (!compiled_[index].uri) return std::nullopt;
    auto uri_match = compiled_[index].uri->full_match_info(uri_text);
    if (!uri_match) return std::nullopt;

    // Body: regex match, or keyword-subset fallback for structured
    // payloads whose serialization order differs.
    bool body_ok = true;
    if (candidate.signature.has_body && txn.request.body_kind != BodyKind::kNone) {
        body_ok = false;
        if (compiled_[index].body && compiled_[index].body->full_match(txn.request.body)) {
            body_ok = true;
        } else if (keywords_subset(candidate.signature.body.keywords(),
                                   txn.request.body_kind, txn.request.body)) {
            body_ok = true;
        }
    }
    if (!body_ok) return std::nullopt;

    MatchOutcome outcome;
    outcome.transaction = index;
    outcome.uri_matched = true;
    outcome.body_matched = candidate.signature.has_body;
    outcome.uri_accounting.key_bytes = uri_match->accounting.literal_bytes;
    outcome.uri_accounting.wildcard_bytes = uri_match->accounting.wildcard_bytes;

    // Request payload accounting: query string in the URI plus the body.
    std::vector<std::string> request_keywords;
    if (candidate.signature.has_body) {
        request_keywords = candidate.signature.body.keywords();
    }
    for (auto& k : candidate.signature.uri.keywords()) {
        request_keywords.push_back(std::move(k));
    }
    if (!txn.request.uri.query.empty()) {
        ByteAccounting q;
        std::set<std::string> keys(request_keywords.begin(), request_keywords.end());
        account_query(txn.request.uri.query, keys, q);
        outcome.request_accounting += q;
    }
    if (txn.request.body_kind != BodyKind::kNone) {
        outcome.request_accounting +=
            account_payload(request_keywords, txn.request.body_kind, txn.request.body);
    }

    // Response: structural subset + accounting.
    if (candidate.signature.has_response_body &&
        txn.response.body_kind != BodyKind::kNone) {
        auto demanded = candidate.signature.response_body.keywords();
        outcome.response_matched =
            keywords_subset(demanded, txn.response.body_kind, txn.response.body);
        outcome.response_accounting =
            account_payload(demanded, txn.response.body_kind, txn.response.body);
    }
    return outcome;
}

MatchOutcome TraceMatcher::match(const http::Transaction& txn) const {
    std::string uri_text = txn.request.uri.to_string();
    for (std::size_t i = 0; i < report_->transactions.size(); ++i) {
        if (auto outcome = match_signature(i, txn, uri_text)) return *outcome;
    }
    return {};
}

MatchOutcome TraceMatcher::match_best(const http::Transaction& txn) const {
    std::string uri_text = txn.request.uri.to_string();
    MatchOutcome best;
    for (std::size_t i = 0; i < report_->transactions.size(); ++i) {
        auto outcome = match_signature(i, txn, uri_text);
        if (!outcome) continue;
        if (!best.transaction ||
            outcome->uri_accounting.key_bytes > best.uri_accounting.key_bytes) {
            best = std::move(*outcome);
        }
    }
    return best;
}

std::vector<MatchOutcome> TraceMatcher::match_all(const http::Transaction& txn) const {
    std::string uri_text = txn.request.uri.to_string();
    std::vector<MatchOutcome> accepting;
    for (std::size_t i = 0; i < report_->transactions.size(); ++i) {
        auto outcome = match_signature(i, txn, uri_text);
        if (outcome) accepting.push_back(std::move(*outcome));
    }
    return accepting;
}

CoverageSummary TraceMatcher::evaluate(const http::Trace& trace) const {
    CoverageSummary summary;
    summary.signatures_total = report_->transactions.size();
    std::vector<bool> hit(report_->transactions.size(), false);
    for (const auto& txn : trace.transactions) {
        summary.trace_transactions += 1;
        MatchOutcome outcome = match(txn);
        if (outcome.transaction) {
            summary.matched += 1;
            hit[*outcome.transaction] = true;
            summary.request_bytes += outcome.uri_accounting;
            summary.request_bytes += outcome.request_accounting;
            summary.response_bytes += outcome.response_accounting;
        }
    }
    summary.signatures_hit =
        static_cast<std::size_t>(std::count(hit.begin(), hit.end(), true));
    return summary;
}

}  // namespace extractocol::core
