// Trace validation (§5.1): matches the regex signatures of an AnalysisReport
// against concrete traffic traces, and computes the evaluation metrics —
// signature coverage, logical-match validity, constant-keyword counts
// (Fig. 7) and the Rk/Rv/Rn matched-byte fractions (Table 2).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "http/message.hpp"
#include "text/regex.hpp"

namespace extractocol::core {

/// Byte accounting over request/response payloads (Table 2):
///   Rk — bytes matching constant keywords of the signature,
///   Rv — bytes of values whose key the signature identifies,
///   Rn — bytes covered only by full wildcards.
struct ByteAccounting {
    std::size_t key_bytes = 0;
    std::size_t value_bytes = 0;
    std::size_t wildcard_bytes = 0;

    [[nodiscard]] std::size_t total() const {
        return key_bytes + value_bytes + wildcard_bytes;
    }
    [[nodiscard]] double rk() const { return ratio(key_bytes); }
    [[nodiscard]] double rv() const { return ratio(value_bytes); }
    [[nodiscard]] double rn() const { return ratio(wildcard_bytes); }

    void operator+=(const ByteAccounting& other) {
        key_bytes += other.key_bytes;
        value_bytes += other.value_bytes;
        wildcard_bytes += other.wildcard_bytes;
    }

private:
    [[nodiscard]] double ratio(std::size_t part) const {
        return total() == 0 ? 0.0
                            : static_cast<double>(part) / static_cast<double>(total());
    }
};

struct MatchOutcome {
    /// Index of the matching report transaction, if any.
    std::optional<std::size_t> transaction;
    bool uri_matched = false;
    bool body_matched = false;
    bool response_matched = false;
    ByteAccounting uri_accounting;       // literal vs wildcard on the URI regex
    ByteAccounting request_accounting;   // query string + body, key-aware
    ByteAccounting response_accounting;
};

struct CoverageSummary {
    std::size_t trace_transactions = 0;
    std::size_t matched = 0;
    /// Signatures with at least one matching trace transaction.
    std::size_t signatures_hit = 0;
    std::size_t signatures_total = 0;
    ByteAccounting request_bytes;
    ByteAccounting response_bytes;
};

class TraceMatcher {
public:
    explicit TraceMatcher(const AnalysisReport& report);

    /// Matches one concrete transaction against the report's signatures.
    /// First accepting signature in report order wins.
    [[nodiscard]] MatchOutcome match(const http::Transaction& txn) const;

    /// Specificity-ranked variant of match(): among all signatures accepting
    /// the transaction, returns the one matching the most literal URI bytes
    /// (ties -> lowest index). Needed wherever wildcard-URI signatures (the
    /// uri_from degradations, GET (.*)) coexist with constant ones — in
    /// report order the wildcard would absorb traffic belonging to a more
    /// specific signature declared after it.
    [[nodiscard]] MatchOutcome match_best(const http::Transaction& txn) const;

    /// Every signature accepting the transaction, in report order. Callers
    /// that assign traffic to signatures one-to-one (the accuracy
    /// observatory) pick among these; match_best() is the single-winner
    /// projection of this list.
    [[nodiscard]] std::vector<MatchOutcome> match_all(
        const http::Transaction& txn) const;

    /// Runs the whole trace and aggregates.
    [[nodiscard]] CoverageSummary evaluate(const http::Trace& trace) const;

    /// Constant keywords present in a concrete payload (query string keys,
    /// JSON keys, XML tags/attributes) — the trace side of Fig. 7.
    static std::vector<std::string> payload_keywords(http::BodyKind kind,
                                                     const std::string& body);

private:
    struct CompiledSignature {
        std::optional<text::Regex> uri;
        std::optional<text::Regex> body;
    };

    /// Key-aware accounting of a key-value payload against sig keywords.
    [[nodiscard]] static ByteAccounting account_payload(
        const std::vector<std::string>& sig_keywords, http::BodyKind kind,
        const std::string& body);

    /// Full outcome of matching `txn` against signature `index` alone;
    /// nullopt if that signature does not accept the transaction.
    [[nodiscard]] std::optional<MatchOutcome> match_signature(
        std::size_t index, const http::Transaction& txn,
        const std::string& uri_text) const;

    const AnalysisReport* report_;
    std::vector<CompiledSignature> compiled_;
};

}  // namespace extractocol::core
