// The 34 evaluation-subject stand-ins (Table 1). Each spec mirrors the
// protocol surface the paper reports for the real app: endpoint counts by
// HTTP method, request payload kinds, response payload kinds, trigger
// events (the fuzz-coverage model), HTTP library, and the dependency /
// intent / async-chain structure exercised by the case studies.
#include "corpus/corpus.hpp"

#include <cctype>
#include <cstdlib>

#include "support/log.hpp"

namespace extractocol::corpus {

namespace {

using EK = xir::EventKind;
using Body = EndpointSpec::Body;
using Resp = EndpointSpec::Response;
using M = http::Method;

// ----------------------------------------------------------- shorthands --

ParamSpec pc(std::string key, std::string value) {
    return {std::move(key), ParamSpec::Value::kConst, std::move(value)};
}
ParamSpec pd(std::string key) { return {std::move(key), ParamSpec::Value::kDynamicInt, ""}; }
ParamSpec pu(std::string key) { return {std::move(key), ParamSpec::Value::kUserInput, ""}; }
ParamSpec pr(std::string key, std::string res_id) {
    return {std::move(key), ParamSpec::Value::kResource, std::move(res_id)};
}
ParamSpec pt(std::string key, std::string token_ref) {
    return {std::move(key), ParamSpec::Value::kToken, std::move(token_ref)};
}

FieldSpec fs(std::string key) { return {std::move(key), FieldSpec::Kind::kString, {}, true}; }
FieldSpec fi(std::string key) { return {std::move(key), FieldSpec::Kind::kInt, {}, true}; }
FieldSpec fb(std::string key) { return {std::move(key), FieldSpec::Kind::kBool, {}, true}; }
FieldSpec fo(std::string key, std::vector<FieldSpec> children) {
    return {std::move(key), FieldSpec::Kind::kObject, std::move(children), true};
}
FieldSpec fa(std::string key, std::vector<FieldSpec> children) {
    return {std::move(key), FieldSpec::Kind::kArray, std::move(children), true};
}
/// On the wire but never read by app code.
FieldSpec funread(std::string key) {
    return {std::move(key), FieldSpec::Kind::kString, {}, false};
}
/// Read and stashed in the session (login tokens).
FieldSpec fstore(std::string key) {
    FieldSpec f = fs(std::move(key));
    f.store_to_static = true;
    return f;
}
/// Read, stored, and URL-shaped (ad/media URIs).
FieldSpec furl_store(std::string key) {
    FieldSpec f = fstore(std::move(key));
    f.is_url = true;
    return f;
}
FieldSpec fdb(std::string key, std::string table, bool url = false) {
    FieldSpec f = fs(std::move(key));
    f.store_to_db = std::move(table);
    f.is_url = url;
    return f;
}

EndpointSpec ep(std::string name, M method, HttpLib lib, std::string host,
                std::string path) {
    EndpointSpec e;
    e.name = std::move(name);
    e.method = method;
    e.lib = lib;
    e.host = std::move(host);
    e.path = std::move(path);
    return e;
}

// ------------------------------------------------------------- bulk gen --

struct Bulk {
    std::string prefix;
    std::string host;
    M method = M::kGet;
    int count = 0;
    EK trigger = EK::kOnClick;
    HttpLib lib = HttpLib::kApache;
    Body body = Body::kNone;
    Resp resp = Resp::kNone;
    int resp_fields = 3;
    bool query_params = true;
    bool via_intent = false;
    int async_hops = 0;
};

/// Spells an index as letters (0->a, 1->b, ... 26->aa) so endpoint paths are
/// textual, as in real REST APIs — numeric segments would be collapsed by
/// trace-side URI grouping.
std::string alpha(int index) {
    std::string out;
    do {
        out.insert(out.begin(), static_cast<char>('a' + index % 26));
        index = index / 26;
    } while (index-- > 0);
    return out;
}

/// Adds `count` endpoints with distinct paths / keywords following one
/// template — how large apps reach Table-1-scale endpoint counts. Response
/// shapes repeat in groups of ~5 (real APIs share response schemas, which is
/// why Table 1's unique-response counts sit well below endpoint counts).
void add_bulk(AppSpec& spec, const Bulk& b) {
    for (int i = 0; i < b.count; ++i) {
        EndpointSpec e = ep(b.prefix + "_" + std::to_string(i), b.method, b.lib, b.host,
                            "/api/" + b.prefix + "/" + alpha(i));
        e.trigger = b.trigger;
        e.via_intent = b.via_intent;
        e.async_hops = b.async_hops;
        if (b.query_params) {
            e.query = {pd("page"), pc(b.prefix + "_flag" + alpha(i), "1")};
        }
        if (b.body == Body::kQueryString) {
            e.body = Body::kQueryString;
            e.body_params = {pu(b.prefix + "_field" + alpha(i)), pd("count")};
        } else if (b.body == Body::kJson) {
            e.body = Body::kJson;
            e.body_fields = {fs(b.prefix + "_key" + alpha(i)), fi("seq"), fb("sync")};
        }
        if (b.resp != Resp::kNone) {
            e.response = b.resp;
            int group = i % std::max(1, (b.count + 4) / 5);
            for (int j = 0; j < b.resp_fields; ++j) {
                e.response_fields.push_back(
                    fs(b.prefix + "_g" + std::to_string(group) + "_r" +
                       std::to_string(j)));
            }
            e.response_fields.push_back(fi("status"));
            // One wire-only key per group (the Fig. 7 read-vs-wire gap).
            e.response_fields.push_back(
                funread("srv_extra" + std::to_string(group)));
        }
        spec.endpoints.push_back(std::move(e));
    }
}

// ======================================================= open source =====

AppSpec spec_adblock_plus() {
    AppSpec s{"Adblock Plus", "org.adblockplus", true, true, {}, 40};
    {
        auto e = ep("filter_list", M::kGet, HttpLib::kUrlConnection,
                    "easylist.adblockplus.org", "/easylist.txt");
        e.query = {pc("format", "xml")};
        e.response = Resp::kXml;
        e.response_fields = {fs("filter"), fs("version")};
        s.endpoints.push_back(e);
    }
    {
        auto e = ep("update_check", M::kGet, HttpLib::kUrlConnection,
                    "update.adblockplus.org", "/check");
        e.query = {pd("build")};
        e.trigger = EK::kOnTimer;  // timer-triggered update check (§5.1)
        s.endpoints.push_back(e);
    }
    {
        auto e = ep("report_issue", M::kPost, HttpLib::kApache,
                    "reports.adblockplus.org", "/submit");
        e.body = Body::kQueryString;
        e.body_params = {pu("comment"), pc("type", "filter"), pd("version")};
        s.endpoints.push_back(e);
    }
    return s;
}

AppSpec spec_anarxiv() {
    AppSpec s{"AnarXiv", "org.anarxiv", true, false, {}, 35};
    for (const char* feed : {"query", "export"}) {
        auto e = ep(std::string("arxiv_") + feed, M::kGet, HttpLib::kUrlConnection,
                    "export.arxiv.org", std::string("/api/") + feed);
        e.query = {pu("search_query"), pd("start"), pd("max_results")};
        e.response = Resp::kXml;
        e.response_fields = {fs("entry"), fs("title"), fs("summary")};
        s.endpoints.push_back(e);
    }
    return s;
}

AppSpec spec_blippex() {
    AppSpec s{"blippex", "com.blippex", true, true, {}, 30};
    auto e = ep("search", M::kGet, HttpLib::kApache, "api.blippex.org", "/search");
    e.query = {pu("q"), pd("page")};
    e.response = Resp::kJson;
    e.response_fields = {fa("results", {fs("url"), fs("title"), fi("dwell")}),
                         fi("total"), funread("took_ms")};
    s.endpoints.push_back(e);
    return s;
}

AppSpec spec_diaspora() {
    AppSpec s{"Diaspora WebClient", "com.github.dfa.diaspora", true, false, {}, 30};
    auto e = ep("stream", M::kGet, HttpLib::kOkHttp, "pod.diaspora.software",
                "/stream.json");
    e.query = {pd("max_time")};
    e.response = Resp::kJson;
    e.response_fields = {fa("posts", {fs("author"), fs("text"), fi("id")}),
                         funread("meta")};
    s.endpoints.push_back(e);
    return s;
}

AppSpec spec_diode() {
    // The Fig. 3 subject: one AsyncTask builds nine URI variants (frontpage /
    // search / subreddit × count/after/before suffixes); plus a tail of
    // simple subreddit fetches.
    AppSpec s{"Diode", "in.shick.diode", true, false, {}, 330};
    {
        auto e = ep("subreddit_feed", M::kGet, HttpLib::kApache, "www.reddit.com",
                    "/r/pics/.json");
        e.path_alternatives = {"/.json", "/search/.json"};
        e.query = {pu("q"), pc("sort", "hot"), pd("count"), pu("after")};
        e.response = Resp::kJson;
        e.response_fields = {
            fo("data", {fa("children", {fs("title"), fs("permalink"), fi("score")}),
                        fs("after")}),
            funread("kind")};
        s.endpoints.push_back(e);
    }
    {
        auto e = ep("comments", M::kGet, HttpLib::kApache, "www.reddit.com",
                    "/comments/article.json");
        e.dynamic_path_id = true;
        e.query = {pd("limit")};
        e.response = Resp::kJson;
        e.response_fields = {fa("comments", {fs("body"), fs("author")})};
        s.endpoints.push_back(e);
    }
    {
        auto e = ep("user_about", M::kGet, HttpLib::kApache, "www.reddit.com",
                    "/user/about.json");
        e.response = Resp::kJson;
        e.response_fields = {fo("data", {fs("name"), fi("link_karma")})};
        s.endpoints.push_back(e);
    }
    Bulk tail;
    tail.prefix = "listing";
    tail.host = "www.reddit.com";
    tail.count = 21;
    tail.query_params = true;
    add_bulk(s, tail);
    return s;
}

AppSpec spec_ifixit() {
    AppSpec s{"iFixIt", "com.dozuki.ifixit", true, false, {}, 60};
    Bulk guides;
    guides.prefix = "guides";
    guides.host = "www.ifixit.com";
    guides.count = 12;
    guides.resp = Resp::kJson;
    add_bulk(s, guides);
    Bulk extra_get;
    extra_get.prefix = "categories";
    extra_get.host = "www.ifixit.com";
    extra_get.count = 3;
    extra_get.resp = Resp::kJson;
    extra_get.resp_fields = 2;
    add_bulk(s, extra_get);
    {
        auto e = ep("login", M::kPost, HttpLib::kApache, "www.ifixit.com", "/api/2.0/auth");
        e.trigger = EK::kOnLogin;
        e.body = Body::kQueryString;
        e.body_params = {pu("email"), pu("password")};
        e.response = Resp::kJson;
        e.response_fields = {fstore("authToken"), fi("userid")};
        s.endpoints.push_back(e);
    }
    for (int i = 0; i < 2; ++i) {
        auto e = ep("comment_" + std::to_string(i), M::kPost, HttpLib::kApache,
                    "www.ifixit.com", "/api/2.0/comment/" + std::to_string(i));
        e.body = Body::kQueryString;
        e.body_params = {pu("text"), pt("auth", "login.authToken")};
        s.endpoints.push_back(e);
    }
    Bulk posts;
    posts.prefix = "edits";
    posts.host = "www.ifixit.com";
    posts.method = M::kPost;
    posts.count = 4;
    posts.body = Body::kJson;
    posts.query_params = false;
    add_bulk(s, posts);
    return s;
}

AppSpec spec_lightning() {
    AppSpec s{"Lightning", "acr.browser.lightning", true, false, {}, 35};
    {
        auto e = ep("suggestions", M::kGet, HttpLib::kUrlConnection,
                    "suggestqueries.google.com", "/complete/search");
        e.query = {pu("q"), pc("output", "toolbar")};
        e.response = Resp::kXml;
        e.response_fields = {fs("suggestion")};
        s.endpoints.push_back(e);
    }
    {
        auto e = ep("homepage", M::kGet, HttpLib::kUrlConnection, "www.google.com", "/");
        s.endpoints.push_back(e);
    }
    return s;
}

AppSpec spec_qbittorrent() {
    AppSpec s{"qBittorrent", "com.qbittorrent.client", true, false, {}, 45};
    Bulk gets;
    gets.prefix = "list";
    gets.host = "nas.local:8080";
    gets.count = 3;
    gets.resp = Resp::kJson;
    add_bulk(s, gets);
    Bulk cmds;
    cmds.prefix = "command";
    cmds.host = "nas.local:8080";
    cmds.method = M::kPost;
    cmds.count = 13;
    cmds.body = Body::kQueryString;
    cmds.query_params = false;
    add_bulk(s, cmds);
    return s;
}

AppSpec spec_radio_reddit() {
    // The Table 3 subject: six transactions with login-token dependencies
    // and a MediaPlayer stream whose URI comes from a prior JSON response.
    AppSpec s{"radio reddit", "com.radioreddit", true, false, {}, 45};
    {
        auto e = ep("info", M::kGet, HttpLib::kApache, "www.reddit.com", "/api/info.json");
        e.response = Resp::kJson;
        e.response_fields = {fs("kind"), fo("data", {fs("id")})};
        s.endpoints.push_back(e);
    }
    {
        auto e = ep("status", M::kGet, HttpLib::kApache, "www.radioreddit.com",
                    "/api/status.json");
        e.path_alternatives = {"/api/hiphop/status.json", "/api/rock/status.json"};
        e.response = Resp::kJson;
        // 18 wire keywords, 16 read by the app — "album" and "score" stay
        // unprocessed (Fig. 8).
        e.response_fields = {
            furl_store("relay"), fs("all_listeners"), fs("listeners"), fs("playlist"),
            fb("online"),
            fo("songs", {fa("song", {fs("artist"), fs("title"), fs("reddit_title"),
                                     fs("redditor"), fs("genre"), fs("id"),
                                     fs("preview_url"), fs("download_url"),
                                     fs("reddit_url")})}),
            funread("album"), funread("score")};
        s.endpoints.push_back(e);
    }
    {
        auto e = ep("login", M::kPost, HttpLib::kApache, "ssl.reddit.com", "/api/login");
        e.trigger = EK::kOnLogin;
        s.https = false;  // app mixes http/https; login uses https host
        e.body = Body::kQueryString;
        e.body_params = {pu("user"), pu("passwd"), pc("api_type", "json")};
        e.response = Resp::kJson;
        e.response_fields = {
            fo("json", {fo("data", {fstore("modhash"), fstore("cookie")}),
                        fb("need_https")})};
        s.endpoints.push_back(e);
    }
    {
        auto e = ep("save", M::kPost, HttpLib::kApache, "www.reddit.com", "/api/save");
        e.path_alternatives = {"/api/unsave"};
        e.body = Body::kQueryString;
        e.body_params = {pd("id"), pt("uh", "login.modhash")};
        e.headers = {pt("cookie", "login.cookie")};
        e.response = Resp::kJson;
        e.response_fields = {fb("success")};
        s.endpoints.push_back(e);
    }
    {
        auto e = ep("vote", M::kPost, HttpLib::kApache, "www.reddit.com", "/api/vote");
        e.body = Body::kQueryString;
        e.body_params = {pd("id"), pd("dir"), pt("uh", "login.modhash")};
        e.headers = {pt("cookie", "login.cookie")};
        s.endpoints.push_back(e);
    }
    {
        auto e = ep("stream", M::kGet, HttpLib::kApache, "", "");
        e.uri_from = "static:status.relay";
        e.consumer = EndpointSpec::Consumer::kMediaPlayer;
        s.endpoints.push_back(e);
    }
    return s;
}

AppSpec spec_reddinator() {
    AppSpec s{"Reddinator", "au.com.wallaceit.reddinator", true, false, {}, 40};
    Bulk gets;
    gets.prefix = "widget";
    gets.host = "www.reddit.com";
    gets.count = 3;
    gets.resp = Resp::kJson;
    add_bulk(s, gets);
    Bulk posts;
    posts.prefix = "action";
    posts.host = "www.reddit.com";
    posts.method = M::kPost;
    posts.count = 3;
    posts.body = Body::kQueryString;
    posts.resp = Resp::kJson;
    posts.query_params = false;
    add_bulk(s, posts);
    return s;
}

AppSpec spec_twister() {
    AppSpec s{"Twister", "com.twister", true, false, {}, 40};
    Bulk rpc;
    rpc.prefix = "rpc";
    rpc.host = "127.0.0.1:28332";
    rpc.method = M::kPost;
    rpc.count = 11;
    rpc.body = Body::kQueryString;
    rpc.resp = Resp::kJson;
    rpc.query_params = false;
    add_bulk(s, rpc);
    // Three of the POSTs have responses the app never parses.
    for (int i = 8; i < 11; ++i) {
        s.endpoints[static_cast<std::size_t>(i)].response = Resp::kNone;
        s.endpoints[static_cast<std::size_t>(i)].response_fields.clear();
    }
    return s;
}

AppSpec spec_tzm() {
    AppSpec s{"TZM", "com.zeitgeist.tzm", true, true, {}, 30};
    {
        auto e = ep("news", M::kGet, HttpLib::kApache, "www.thezeitgeistmovement.com",
                    "/feed.json");
        e.response = Resp::kJson;
        e.response_fields = {fa("articles", {fs("title"), fs("link")})};
        s.endpoints.push_back(e);
    }
    {
        auto e = ep("chapters", M::kGet, HttpLib::kApache,
                    "www.thezeitgeistmovement.com", "/chapters");
        e.query = {pu("country")};
        s.endpoints.push_back(e);
    }
    return s;
}

AppSpec spec_wallabag() {
    AppSpec s{"Wallabag", "fr.gaulupeau.apps.wallabag", true, false, {}, 30};
    auto e = ep("feed", M::kGet, HttpLib::kUrlConnection, "wallabag.example.org",
                "/feed");
    e.query = {pu("user_id"), pr("token", "wallabag_token"), pc("type", "home")};
    e.response = Resp::kXml;
    e.response_fields = {fs("item"), fs("title"), fs("link")};
    s.endpoints.push_back(e);
    return s;
}

AppSpec spec_weather_notification() {
    // The §3.4 async example: a location callback builds part of the query
    // string; a later event issues the request.
    AppSpec s{"Weather Notification", "ru.gelin.android.weather", true, false, {}, 35};
    {
        auto e = ep("weather", M::kGet, HttpLib::kUrlConnection, "api.openweathermap.org",
                    "/data/2.5/weather");
        e.query = {pr("appid", "owm_api_key")};
        e.async_hops = 1;  // lat/units fragment crosses one async hop
        e.response = Resp::kXml;
        e.response_fields = {fs("temperature"), fs("humidity"), fs("city")};
        s.endpoints.push_back(e);
    }
    {
        auto e = ep("forecast", M::kGet, HttpLib::kUrlConnection,
                    "api.openweathermap.org", "/data/2.5/forecast");
        e.query = {pu("q"), pr("appid", "owm_api_key")};
        e.response = Resp::kXml;
        e.response_fields = {fs("day"), fs("temp_min"), fs("temp_max")};
        s.endpoints.push_back(e);
    }
    return s;
}

// ===================================================== closed source =====

AppSpec shopping_app(std::string name, std::string package, std::string host,
                     int get_click, int get_custom, int post_custom, int post_action,
                     int put_action, int delete_action, int intent_messages) {
    AppSpec s{std::move(name), std::move(package), false, true, {}, 120};
    Bulk browse;
    browse.prefix = "browse";
    browse.host = host;
    browse.count = get_click;
    browse.resp = Resp::kJson;
    add_bulk(s, browse);
    Bulk detail;
    detail.prefix = "detail";
    detail.host = host;
    detail.count = get_custom;
    detail.trigger = EK::kOnCustomUi;
    detail.resp = Resp::kJson;
    add_bulk(s, detail);
    Bulk social;
    social.prefix = "social";
    social.host = host;
    social.method = M::kPost;
    social.count = post_custom;
    social.trigger = EK::kOnCustomUi;
    social.body = Body::kJson;
    social.resp = Resp::kJson;
    social.query_params = false;
    add_bulk(s, social);
    Bulk checkout;
    checkout.prefix = "checkout";
    checkout.host = host;
    checkout.method = M::kPost;
    checkout.count = post_action;
    checkout.trigger = EK::kOnAction;  // purchases: no fuzzer reaches these
    checkout.body = Body::kQueryString;
    checkout.resp = Resp::kJson;
    checkout.query_params = false;
    add_bulk(s, checkout);
    Bulk updates;
    updates.prefix = "update";
    updates.host = host;
    updates.method = M::kPut;
    updates.count = put_action;
    updates.trigger = EK::kOnAction;
    updates.body = Body::kJson;
    updates.resp = Resp::kJson;
    updates.query_params = false;
    add_bulk(s, updates);
    Bulk removals;
    removals.prefix = "remove";
    removals.host = host;
    removals.method = M::kDelete;
    removals.count = delete_action;
    removals.trigger = EK::kOnAction;
    removals.lib = HttpLib::kOkHttp;
    removals.query_params = false;
    add_bulk(s, removals);
    Bulk ads;  // ad-library messages routed through intents: Extractocol miss
    ads.prefix = "adtrack";
    ads.host = "ads.example-network.com";
    ads.count = intent_messages;
    ads.trigger = EK::kOnCustomUi;
    ads.via_intent = true;
    add_bulk(s, ads);
    return s;
}

AppSpec spec_5miles() {
    return shopping_app("5miles", "com.fivemiles", "api.5milesapp.com",
                        /*get_click=*/6, /*get_custom=*/18, /*post_custom=*/12,
                        /*post_action=*/39, 0, 0, /*intent=*/1);
}

AppSpec spec_ac_app() {
    AppSpec s{"AC App for Android", "com.acapp", false, false, {}, 90};
    Bulk gets;
    gets.prefix = "page";
    gets.host = "api.acapp.example.com";
    gets.count = 9;
    gets.resp = Resp::kJson;
    add_bulk(s, gets);
    Bulk posts;
    posts.prefix = "submit";
    posts.host = "api.acapp.example.com";
    posts.method = M::kPost;
    posts.count = 15;
    posts.body = Body::kQueryString;
    posts.resp = Resp::kJson;
    posts.query_params = false;
    posts.trigger = EK::kOnCustomUi;
    add_bulk(s, posts);
    return s;
}

AppSpec spec_aol() {
    AppSpec s{"AOL: Mail, News & Video", "com.aol.mobile", false, false, {}, 90};
    Bulk feeds;
    feeds.prefix = "feed";
    feeds.host = "api.aol.com";
    feeds.count = 9;
    feeds.resp = Resp::kJson;
    feeds.resp_fields = 4;
    add_bulk(s, feeds);
    return s;
}

AppSpec spec_accuweather() {
    AppSpec s{"AccuWeather", "com.accuweather.android", false, false, {}, 100};
    Bulk gets;  // all custom UI: PUMA finds nothing (auto column 0)
    gets.prefix = "conditions";
    gets.host = "api.accuweather.com";
    gets.count = 14;
    gets.trigger = EK::kOnCustomUi;
    gets.resp = Resp::kJson;
    add_bulk(s, gets);
    {
        auto e = ep("geo", M::kGet, HttpLib::kApache, "api.accuweather.com",
                    "/locations/v1/geoposition");
        e.trigger = EK::kOnCustomUi;
        e.async_hops = 1;  // location-service fragment
        e.query = {pr("apikey", "accu_api_key")};
        e.response = Resp::kJson;
        e.response_fields = {fs("Key"), fs("LocalizedName")};
        s.endpoints.push_back(e);
    }
    Bulk posts;
    posts.prefix = "alerts";
    posts.host = "api.accuweather.com";
    posts.method = M::kPost;
    posts.count = 3;
    posts.trigger = EK::kOnCustomUi;
    posts.body = Body::kQueryString;
    posts.resp = Resp::kJson;
    posts.query_params = false;
    add_bulk(s, posts);
    return s;
}

AppSpec spec_buzzfeed() {
    AppSpec s{"Buzzfeed", "com.buzzfeed.android", false, false, {}, 110};
    Bulk gets;
    gets.prefix = "buzz";
    gets.host = "api.buzzfeed.com";
    gets.count = 5;  // reachable by all
    gets.resp = Resp::kJson;
    add_bulk(s, gets);
    Bulk timer_gets;  // server-push/timer refreshes: only static analysis sees
    timer_gets.prefix = "refresh";
    timer_gets.host = "api.buzzfeed.com";
    timer_gets.count = 11;
    timer_gets.trigger = EK::kOnTimer;
    timer_gets.resp = Resp::kJson;
    add_bulk(s, timer_gets);
    Bulk posts;
    posts.prefix = "react";
    posts.host = "api.buzzfeed.com";
    posts.method = M::kPost;
    posts.count = 5;
    posts.body = Body::kQueryString;
    posts.query_params = false;
    add_bulk(s, posts);
    Bulk action_posts;
    action_posts.prefix = "share";
    action_posts.host = "api.buzzfeed.com";
    action_posts.method = M::kPost;
    action_posts.count = 7;
    action_posts.trigger = EK::kOnAction;
    action_posts.body = Body::kQueryString;
    action_posts.resp = Resp::kJson;
    action_posts.query_params = false;
    add_bulk(s, action_posts);
    return s;
}

AppSpec spec_flipboard() {
    return shopping_app("Flipboard", "flipboard.app", "fbprod.flipboard.com",
                        /*get_click=*/0, /*get_custom=*/23, /*post_custom=*/13,
                        /*post_action=*/28, 0, 0, /*intent=*/1);
}

AppSpec spec_geek() {
    AppSpec s{"GEEK", "com.contextlogic.geek", false, true, {}, 110};
    Bulk posts;  // API entirely POST-based
    posts.prefix = "api";
    posts.host = "api.geek.com";
    posts.method = M::kPost;
    posts.count = 48;
    posts.trigger = EK::kOnCustomUi;
    posts.body = Body::kQueryString;
    posts.resp = Resp::kJson;
    posts.query_params = false;
    add_bulk(s, posts);
    Bulk hidden;
    hidden.prefix = "batch";
    hidden.host = "api.geek.com";
    hidden.method = M::kPost;
    hidden.count = 49;
    hidden.trigger = EK::kOnServerPush;
    hidden.body = Body::kQueryString;
    hidden.resp = Resp::kJson;
    hidden.query_params = false;
    add_bulk(s, hidden);
    {
        // One GET visible only to manual fuzzing (intent-routed web view).
        auto e = ep("webview", M::kGet, HttpLib::kApache, "www.geek.com", "/terms");
        e.trigger = EK::kOnCustomUi;
        e.via_intent = true;
        s.endpoints.push_back(e);
    }
    return s;
}

AppSpec spec_kayak() {
    // The §5.3 reverse-engineering subject. Endpoint categories follow
    // Table 5; the three Table-6 signatures are explicit. The app-gating
    // User-Agent header is on every request; an out-of-scope ad library
    // exercises the com.kayak class-scope filter.
    AppSpec s{"KAYAK", "com.kayak", false, true, {}, 120};
    auto ua = pc("User-Agent", "kayakandroidphone/8.1");

    Bulk trips;
    trips.prefix = "trips";
    trips.host = "www.kayak.com";
    trips.count = 11;
    trips.trigger = EK::kOnCustomUi;
    add_bulk(s, trips);
    for (int i = 0; i < 11; ++i) {
        auto& e = s.endpoints[static_cast<std::size_t>(i)];
        e.path = "/trips/v2/edit/trip/" + alpha(i);
        e.headers = {ua};
    }
    {
        auto e = ep("authajax", M::kPost, HttpLib::kApache, "www.kayak.com",
                    "/k/authajax");
        e.headers = {ua};
        e.body = Body::kQueryString;
        e.body_params = {pc("action", "registerandroid"), pu("uuid"), pu("hash"),
                         pu("model"), pc("platform", "android"), pu("os"), pu("locale"),
                         pu("tz")};
        e.response = Resp::kJson;
        e.response_fields = {fstore("sid")};
        e.trigger = EK::kOnCreate;
        s.endpoints.push_back(e);
    }
    for (int i = 0; i < 3; ++i) {
        auto e = ep("auth_extra_" + std::to_string(i), M::kPost, HttpLib::kApache,
                    "www.kayak.com", "/k/authajax/refresh" + std::to_string(i));
        e.headers = {ua};
        e.body = Body::kQueryString;
        e.body_params = {pt("_sid_", "authajax.sid"), pd("seq")};
        e.trigger = EK::kOnTimer;
        s.endpoints.push_back(e);
    }
    for (int i = 0; i < 2; ++i) {
        auto e = ep("fbauth_" + std::to_string(i), M::kPost, HttpLib::kApache,
                    "www.kayak.com", i == 0 ? "/k/run/fbauth/login" : "/k/run/fbauth/link");
        e.headers = {ua};
        e.trigger = EK::kOnLogin;
        e.body = Body::kQueryString;
        e.body_params = {pu("fb_token")};
        s.endpoints.push_back(e);
    }
    {
        auto e = ep("flight_start", M::kGet, HttpLib::kApache, "www.kayak.com",
                    "/api/search/V8/flight/start");
        e.headers = {ua};
        e.query = {pu("cabin"), pd("travelers"), pu("origin"), pu("nearbyO"),
                   pu("destination"), pu("nearbyD"), pu("depart_date"),
                   pu("depart_time"), pu("depart_date_flex"), pt("_sid_", "authajax.sid")};
        e.response = Resp::kJson;
        e.response_fields = {fstore("searchid"), fi("count")};
        e.trigger = EK::kOnCustomUi;
        s.endpoints.push_back(e);
    }
    {
        auto e = ep("flight_poll", M::kGet, HttpLib::kApache, "www.kayak.com",
                    "/api/search/V8/flight/poll");
        e.headers = {ua};
        e.query = {pt("searchid", "flight_start.searchid"), pd("nc"), pd("c"), pu("s"),
                   pc("d", "up"), pu("currency"), pc("includeopaques", "true"),
                   pc("includeSplit", "false")};
        e.response = Resp::kJson;
        e.response_fields = {fa("legs", {fs("airline"), fs("price"), fs("depart")}),
                             fb("done"), funread("adslots")};
        e.trigger = EK::kOnCustomUi;
        s.endpoints.push_back(e);
    }
    for (int i = 0; i < 4; ++i) {
        auto e = ep("flight_misc_" + std::to_string(i), M::kGet, HttpLib::kApache,
                    "www.kayak.com", "/api/search/V8/flight/detail" + std::to_string(i));
        e.headers = {ua};
        e.query = {pt("searchid", "flight_start.searchid")};
        e.response = Resp::kJson;
        e.response_fields = {fs("detail" + std::to_string(i))};
        e.trigger = EK::kOnCustomUi;
        s.endpoints.push_back(e);
    }
    for (int i = 0; i < 2; ++i) {
        auto e = ep("hotel_" + std::to_string(i), M::kGet, HttpLib::kApache,
                    "www.kayak.com",
                    i == 0 ? "/api/search/V8/hotel/detail" : "/api/search/V8/hotel/poll");
        e.headers = {ua};
        e.query = {pu("city"), pd("rooms")};
        e.response = Resp::kJson;
        e.response_fields = {fs("hotel"), fs("rate")};
        e.trigger = EK::kOnCustomUi;
        s.endpoints.push_back(e);
    }
    {
        auto e = ep("car_poll", M::kGet, HttpLib::kApache, "www.kayak.com",
                    "/api/search/V8/car/poll");
        e.headers = {ua};
        e.query = {pu("pickup"), pu("dropoff")};
        e.response = Resp::kJson;
        e.response_fields = {fs("car"), fs("price")};
        e.trigger = EK::kOnCustomUi;
        s.endpoints.push_back(e);
    }
    Bulk mobile;
    mobile.prefix = "mobileapis";
    mobile.host = "www.kayak.com";
    mobile.count = 12;
    mobile.trigger = EK::kOnCustomUi;
    mobile.resp = Resp::kJson;
    add_bulk(s, mobile);
    for (std::size_t i = s.endpoints.size() - 12; i < s.endpoints.size(); ++i) {
        s.endpoints[i].path = "/h/mobileapis/directory/" +
                              s.endpoints[i].name.substr(s.endpoints[i].name.rfind('_') + 1);
        s.endpoints[i].headers = {ua};
    }
    {
        auto e = ep("mobileads", M::kGet, HttpLib::kApache, "www.kayak.com",
                    "/s/mobileads/banner");
        e.headers = {ua};
        e.response = Resp::kJson;
        e.response_fields = {fs("imageUrl"), fs("clickUrl")};
        e.trigger = EK::kOnCustomUi;
        s.endpoints.push_back(e);
    }
    for (int i = 0; i < 4; ++i) {
        auto e = ep("k_misc_" + std::to_string(i), M::kPost, HttpLib::kApache,
                    "www.kayak.com", "/k/cookie" + std::to_string(i));
        e.headers = {ua};
        e.body = Body::kQueryString;
        e.body_params = {pd("v")};
        e.trigger = EK::kOnTimer;
        s.endpoints.push_back(e);
    }
    // Out-of-scope third-party analytics (dropped by class_scope=com.kayak in
    // the §5.3 study; the generator puts it in another package via a second
    // app merged below — here approximated with a distinct prefix endpoint).
    return s;
}

AppSpec spec_letgo() {
    return shopping_app("Letgo", "com.letgo", "api.letgo.com",
                        /*get_click=*/10, /*get_custom=*/28, /*post_custom=*/4,
                        /*post_action=*/6, /*put=*/2, /*delete=*/3, /*intent=*/2);
}

AppSpec spec_linkedin() {
    AppSpec s = shopping_app("LinkedIn", "com.linkedin.android", "api.linkedin.com",
                             /*get_click=*/16, /*get_custom=*/22, /*post_custom=*/8,
                             /*post_action=*/41, 0, 0, /*intent=*/3);
    // Job applications are real-world actions — already modeled by kOnAction.
    return s;
}

AppSpec spec_lucktastic() {
    AppSpec s{"Lucktastic", "com.lucktastic", false, true, {}, 110};
    Bulk gets;
    gets.prefix = "offers";
    gets.host = "api.lucktastic.com";
    gets.count = 14;
    gets.trigger = EK::kOnServerPush;  // contest pushes
    gets.resp = Resp::kJson;
    add_bulk(s, gets);
    Bulk click_gets;
    click_gets.prefix = "wall";
    click_gets.host = "api.lucktastic.com";
    click_gets.count = 2;
    click_gets.trigger = EK::kOnCustomUi;
    click_gets.resp = Resp::kJson;
    add_bulk(s, click_gets);
    Bulk posts;
    posts.prefix = "redeem";
    posts.host = "api.lucktastic.com";
    posts.method = M::kPost;
    posts.count = 9;
    posts.trigger = EK::kOnCustomUi;
    posts.body = Body::kJson;
    posts.resp = Resp::kJson;
    posts.query_params = false;
    add_bulk(s, posts);
    // Heavy ad/analytics SDK use: intent-routed + multi-hop async messages
    // (chartboost/tapjoy/vungle-style) that static analysis misses.
    Bulk ad_intents;
    ad_intents.prefix = "adsdk";
    ad_intents.host = "track.ads-network.com";
    ad_intents.method = M::kPost;
    ad_intents.count = 6;
    ad_intents.trigger = EK::kOnCustomUi;
    ad_intents.via_intent = true;
    add_bulk(s, ad_intents);
    {
        auto e = ep("analytics_beacon", M::kGet, HttpLib::kApache,
                    "beacon.analytics-net.com", "/v1/events");
        e.trigger = EK::kOnCustomUi;
        e.async_hops = 2;  // beyond the one-hop limit: URI degrades to (.*)
        s.endpoints.push_back(e);
    }
    Bulk put_del;
    put_del.prefix = "profile";
    put_del.host = "api.lucktastic.com";
    put_del.method = M::kPut;
    put_del.count = 2;
    put_del.trigger = EK::kOnAction;
    put_del.body = Body::kJson;
    put_del.query_params = false;
    add_bulk(s, put_del);
    Bulk dels;
    dels.prefix = "optout";
    dels.host = "api.lucktastic.com";
    dels.method = M::kDelete;
    dels.count = 4;
    dels.trigger = EK::kOnAction;
    dels.query_params = false;
    add_bulk(s, dels);
    return s;
}

AppSpec spec_musicdownloader() {
    AppSpec s{"MusicDownloader", "com.musicdl", false, true, {}, 60};
    Bulk gets;
    gets.prefix = "track";
    gets.host = "api.musicdl.example.com";
    gets.count = 3;
    gets.trigger = EK::kOnCustomUi;
    gets.resp = Resp::kJson;
    add_bulk(s, gets);
    // Most traffic goes through a 2-hop async download manager chain whose
    // URLs static analysis cannot reconstruct.
    Bulk hidden;
    hidden.prefix = "mirror";
    hidden.host = "cdn.musicdl.example.com";
    hidden.count = 7;
    hidden.trigger = EK::kOnCustomUi;
    hidden.async_hops = 2;
    hidden.query_params = false;
    add_bulk(s, hidden);
    return s;
}

AppSpec spec_offerup() {
    return shopping_app("Offerup", "com.offerup", "api.offerup.com",
                        /*get_click=*/0, /*get_custom=*/33, /*post_custom=*/8,
                        /*post_action=*/15, /*put=*/8, /*delete=*/3, /*intent=*/2);
}

AppSpec spec_pandora() {
    AppSpec s{"Pandora Radio", "com.pandora.android", false, false, {}, 110};
    Bulk stations;
    stations.prefix = "station";
    stations.host = "tuner.pandora.com";
    stations.count = 7;
    stations.resp = Resp::kJson;
    add_bulk(s, stations);
    Bulk rpc;
    rpc.prefix = "method";
    rpc.host = "tuner.pandora.com";
    rpc.method = M::kPost;
    rpc.count = 33;
    rpc.trigger = EK::kOnCustomUi;
    rpc.body = Body::kQueryString;
    rpc.resp = Resp::kJson;
    rpc.query_params = false;
    add_bulk(s, rpc);
    Bulk timers;
    timers.prefix = "heartbeat";
    timers.host = "stats.pandora.com";
    timers.method = M::kPost;
    timers.count = 20;
    timers.trigger = EK::kOnTimer;
    timers.body = Body::kQueryString;
    timers.query_params = false;
    add_bulk(s, timers);
    return s;
}

AppSpec spec_pinterest() {
    AppSpec s{"Pinterest", "com.pinterest", false, true, {}, 140};
    Bulk feed;
    feed.prefix = "feed";
    feed.host = "api.pinterest.com";
    feed.count = 26;
    feed.resp = Resp::kJson;
    feed.resp_fields = 5;
    add_bulk(s, feed);
    Bulk boards;
    boards.prefix = "board";
    boards.host = "api.pinterest.com";
    boards.count = 34;
    boards.trigger = EK::kOnCustomUi;
    boards.resp = Resp::kJson;
    boards.resp_fields = 5;
    add_bulk(s, boards);
    Bulk pins;
    pins.prefix = "pin";
    pins.host = "api.pinterest.com";
    pins.method = M::kPost;
    pins.count = 36;
    pins.trigger = EK::kOnCustomUi;
    pins.body = Body::kJson;
    pins.resp = Resp::kJson;
    pins.resp_fields = 4;
    pins.query_params = false;
    add_bulk(s, pins);
    Bulk edits;
    edits.prefix = "edit";
    edits.host = "api.pinterest.com";
    edits.method = M::kPut;
    edits.count = 32;
    edits.trigger = EK::kOnAction;
    edits.body = Body::kJson;
    edits.resp = Resp::kJson;
    edits.query_params = false;
    add_bulk(s, edits);
    Bulk dels;
    dels.prefix = "unpin";
    dels.host = "api.pinterest.com";
    dels.method = M::kDelete;
    dels.count = 20;
    dels.trigger = EK::kOnAction;
    dels.query_params = false;
    add_bulk(s, dels);
    return s;
}

AppSpec spec_ted() {
    // The Table 4 / Fig. 1 subject: resource-table api-key, DB-mediated
    // thumbnail/video fetches, an ad chain ending in the media player, and a
    // Facebook share.
    AppSpec s{"TED", "com.ted.android", false, true, {}, 110};
    {
        auto e = ep("speakers", M::kGet, HttpLib::kApache, "app-api.ted.com",
                    "/v1/speakers.json");
        e.query = {pc("limit", "2000"), pr("api-key", "ted_api_key"), pu("filter")};
        e.response = Resp::kJson;
        e.response_fields = {fa("speakers", {fdb("name", "speakers"),
                                             fdb("description", "speakers")}),
                             funread("counts")};
        s.endpoints.push_back(e);
    }
    {
        auto e = ep("fb_share", M::kGet, HttpLib::kApache, "graph.facebook.com",
                    "/me/photos");
        e.query = {pu("access_token")};
        s.endpoints.push_back(e);
    }
    {
        auto e = ep("ad_query", M::kGet, HttpLib::kApache, "app-api.ted.com",
                    "/v1/talks/android_ad.json");
        e.dynamic_path_id = true;
        e.query = {pr("api-key", "ted_api_key")};
        e.response = Resp::kJson;
        e.response_fields = {
            fo("companions", {fo("on_page", {fi("height"), fi("width")}),
                              fo("preroll", {fi("height"), fi("width")})}),
            furl_store("url")};
        s.endpoints.push_back(e);
    }
    {
        auto e = ep("ad_manifest", M::kGet, HttpLib::kApache, "", "");
        e.uri_from = "static:ad_query.url";
        e.response = Resp::kXml;
        FieldSpec video = fs("video_url");
        video.store_to_static = true;
        video.is_url = true;
        e.response_fields = {video, fs("duration")};
        s.endpoints.push_back(e);
    }
    {
        auto e = ep("ad_video", M::kGet, HttpLib::kApache, "", "");
        e.uri_from = "static:ad_manifest.video_url";
        e.consumer = EndpointSpec::Consumer::kMediaPlayer;
        s.endpoints.push_back(e);
    }
    {
        auto e = ep("talk_catalog", M::kGet, HttpLib::kApache, "app-api.ted.com",
                    "/v1/talk_catalogs/android_v1.json");
        e.query = {pr("api-key", "ted_api_key"), pc("fields", "duration_in_seconds"),
                   pu("filter")};
        e.response = Resp::kJson;
        e.response_fields = {
            fa("talks", {fdb("thumbnail", "talks", /*url=*/true),
                         fdb("video", "talks", /*url=*/true), fi("duration_in_seconds")}),
            funread("updated_at")};
        s.endpoints.push_back(e);
    }
    {
        auto e = ep("thumbnail", M::kGet, HttpLib::kApache, "", "");
        e.uri_from = "db:talks.thumbnail";
        e.consumer = EndpointSpec::Consumer::kImageLoader;
        s.endpoints.push_back(e);
    }
    {
        auto e = ep("talk_video", M::kGet, HttpLib::kApache, "", "");
        e.uri_from = "db:talks.video";
        e.consumer = EndpointSpec::Consumer::kMediaPlayer;
        s.endpoints.push_back(e);
    }
    // The remaining GET surface (language lists, playlists...).
    Bulk rest;
    rest.prefix = "catalog";
    rest.host = "app-api.ted.com";
    rest.count = 8;
    rest.trigger = EK::kOnCustomUi;
    rest.resp = Resp::kJson;
    add_bulk(s, rest);
    {
        auto e = ep("rate_talk", M::kPost, HttpLib::kApache, "app-api.ted.com",
                    "/v1/talks/rate.json");
        e.dynamic_path_id = true;
        e.body = Body::kQueryString;
        e.body_params = {pd("rating"), pr("api-key", "ted_api_key")};
        e.response = Resp::kJson;
        e.response_fields = {fb("ok")};
        s.endpoints.push_back(e);
    }
    {
        auto e = ep("event_log", M::kPost, HttpLib::kApache, "pixel.ted.com", "/collect");
        e.trigger = EK::kOnTimer;
        e.body = Body::kQueryString;
        e.body_params = {pd("ts"), pu("session")};
        s.endpoints.push_back(e);
    }
    return s;
}

AppSpec spec_tophatter() {
    return shopping_app("Tophatter", "com.tophatter", "api.tophatter.com",
                        /*get_click=*/0, /*get_custom=*/33, /*post_custom=*/14,
                        /*post_action=*/18, /*put=*/1, /*delete=*/4, /*intent=*/1);
}

AppSpec spec_tumblr() {
    AppSpec s{"Tumblr", "com.tumblr", false, true, {}, 100};
    Bulk dash;
    dash.prefix = "dashboard";
    dash.host = "api.tumblr.com";
    dash.count = 12;
    dash.resp = Resp::kJson;
    add_bulk(s, dash);
    Bulk posts;
    posts.prefix = "post";
    posts.host = "api.tumblr.com";
    posts.method = M::kPost;
    posts.count = 8;
    posts.trigger = EK::kOnCustomUi;
    posts.body = Body::kJson;
    posts.resp = Resp::kJson;
    posts.query_params = false;
    add_bulk(s, posts);
    {
        auto e = ep("unfollow", M::kDelete, HttpLib::kOkHttp, "api.tumblr.com",
                    "/v2/user/follow");
        e.trigger = EK::kOnAction;
        s.endpoints.push_back(e);
    }
    return s;
}

AppSpec spec_watchespn() {
    AppSpec s{"WatchESPN", "com.espn.watchespn", false, false, {}, 100};
    Bulk channels;
    channels.prefix = "channel";
    channels.host = "watch.api.espn.com";
    channels.count = 17;
    channels.resp = Resp::kJson;
    add_bulk(s, channels);
    Bulk streams;  // stream refreshes triggered by timers/server events
    streams.prefix = "stream";
    streams.host = "watch.api.espn.com";
    streams.count = 16;
    streams.trigger = EK::kOnTimer;
    streams.resp = Resp::kJson;
    add_bulk(s, streams);
    return s;
}

AppSpec spec_wish_local() {
    AppSpec s{"Wish Local", "com.wishlocal", false, true, {}, 110};
    Bulk posts;
    posts.prefix = "api";
    posts.host = "api.wishlocal.com";
    posts.method = M::kPost;
    posts.count = 48;
    posts.trigger = EK::kOnCustomUi;
    posts.body = Body::kQueryString;
    posts.resp = Resp::kJson;
    posts.query_params = false;
    add_bulk(s, posts);
    Bulk actions;
    actions.prefix = "order";
    actions.host = "api.wishlocal.com";
    actions.method = M::kPost;
    actions.count = 58;
    actions.trigger = EK::kOnAction;
    actions.body = Body::kQueryString;
    actions.resp = Resp::kJson;
    actions.query_params = false;
    add_bulk(s, actions);
    {
        auto e = ep("deeplink", M::kGet, HttpLib::kApache, "www.wishlocal.com", "/dl");
        e.trigger = EK::kOnCustomUi;
        e.via_intent = true;
        s.endpoints.push_back(e);
    }
    return s;
}

}  // namespace

const std::vector<std::string>& open_source_apps() {
    static const std::vector<std::string> names = {
        "Adblock Plus", "AnarXiv",     "blippex",   "Diaspora WebClient",
        "Diode",        "iFixIt",      "Lightning", "qBittorrent",
        "radio reddit", "Reddinator",  "Twister",   "TZM",
        "Wallabag",     "Weather Notification",
    };
    return names;
}

const std::vector<std::string>& closed_source_apps() {
    static const std::vector<std::string> names = {
        "5miles",        "AC App for Android", "AOL: Mail, News & Video",
        "AccuWeather",   "Buzzfeed",           "Flipboard",
        "GEEK",          "KAYAK",              "Letgo",
        "LinkedIn",      "Lucktastic",         "MusicDownloader",
        "Offerup",       "Pandora Radio",      "Pinterest",
        "TED",           "Tophatter",          "Tumblr",
        "WatchESPN",     "Wish Local",
    };
    return names;
}

AppSpec app_spec(const std::string& name) {
    if (name == "Adblock Plus") return spec_adblock_plus();
    if (name == "AnarXiv") return spec_anarxiv();
    if (name == "blippex") return spec_blippex();
    if (name == "Diaspora WebClient") return spec_diaspora();
    if (name == "Diode") return spec_diode();
    if (name == "iFixIt") return spec_ifixit();
    if (name == "Lightning") return spec_lightning();
    if (name == "qBittorrent") return spec_qbittorrent();
    if (name == "radio reddit") return spec_radio_reddit();
    if (name == "Reddinator") return spec_reddinator();
    if (name == "Twister") return spec_twister();
    if (name == "TZM") return spec_tzm();
    if (name == "Wallabag") return spec_wallabag();
    if (name == "Weather Notification") return spec_weather_notification();
    if (name == "5miles") return spec_5miles();
    if (name == "AC App for Android") return spec_ac_app();
    if (name == "AOL: Mail, News & Video") return spec_aol();
    if (name == "AccuWeather") return spec_accuweather();
    if (name == "Buzzfeed") return spec_buzzfeed();
    if (name == "Flipboard") return spec_flipboard();
    if (name == "GEEK") return spec_geek();
    if (name == "KAYAK") return spec_kayak();
    if (name == "Letgo") return spec_letgo();
    if (name == "LinkedIn") return spec_linkedin();
    if (name == "Lucktastic") return spec_lucktastic();
    if (name == "MusicDownloader") return spec_musicdownloader();
    if (name == "Offerup") return spec_offerup();
    if (name == "Pandora Radio") return spec_pandora();
    if (name == "Pinterest") return spec_pinterest();
    if (name == "TED") return spec_ted();
    if (name == "Tophatter") return spec_tophatter();
    if (name == "Tumblr") return spec_tumblr();
    if (name == "WatchESPN") return spec_watchespn();
    if (name == "Wish Local") return spec_wish_local();
    log::error() << "unknown corpus app: " << name;
    std::abort();
}

CorpusApp build_app(const std::string& name) { return generate(app_spec(name)); }

std::string app_slug(const std::string& name) {
    std::string out;
    for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) {
            out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
        } else if (!out.empty() && out.back() != '_') {
            out.push_back('_');
        }
    }
    while (!out.empty() && out.back() == '_') out.pop_back();
    return out;
}

std::optional<std::string> resolve_app_name(const std::string& label) {
    auto scan = [&label](const std::vector<std::string>& names)
        -> std::optional<std::string> {
        for (const auto& n : names) {
            if (n == label) return n;
        }
        for (const auto& n : names) {
            if (app_slug(n) == label) return n;
        }
        return std::nullopt;
    };
    if (auto n = scan(open_source_apps())) return n;
    return scan(closed_source_apps());
}

std::optional<AppSpec> find_app_spec(const std::string& name) {
    auto resolved = resolve_app_name(name);
    if (!resolved) return std::nullopt;
    return app_spec(*resolved);
}

}  // namespace extractocol::corpus
