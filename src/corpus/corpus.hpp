// The evaluation corpus: 14 open-source and 20 closed-source app stand-ins
// mirroring Table 1's subjects. Each app is generated from an AppSpec that
// encodes the subject's protocol surface (endpoint counts per HTTP method,
// payload kinds, trigger events, library choice, token/DB dependencies,
// intent-routed and multi-hop-async messages). See DESIGN.md §2 for the
// substitution argument.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "corpus/spec.hpp"

namespace extractocol::corpus {

/// Names of the 14 open-source subjects (F-Droid apps in the paper).
const std::vector<std::string>& open_source_apps();

/// Names of the 20 closed-source subjects (Google-Play apps in the paper).
const std::vector<std::string>& closed_source_apps();

/// Builds one app by name; aborts on unknown names (programming error).
CorpusApp build_app(const std::string& name);

/// Spec lookup (without generating the program).
AppSpec app_spec(const std::string& name);

/// File-name slug of an app name ("radio reddit" -> "radio_reddit"):
/// lowercase alphanumerics, runs of anything else collapsed to '_'. The
/// naming convention of make_corpus's .xapk artifacts.
std::string app_slug(const std::string& name);

/// Resolves a corpus app from its exact name or its slug (e.g. the stem of
/// a make_corpus .xapk file); nullopt when no corpus app matches.
std::optional<std::string> resolve_app_name(const std::string& label);

/// Non-aborting spec lookup for externally supplied names.
std::optional<AppSpec> find_app_spec(const std::string& name);

}  // namespace extractocol::corpus
