#include "corpus/spec.hpp"

#include <algorithm>
#include <functional>
#include <map>

#include "support/strings.hpp"
#include "text/json.hpp"
#include "xir/builder.hpp"

namespace extractocol::corpus {

using namespace xir;

namespace {

std::string trigger_label(const EndpointSpec& e) {
    return std::string(event_kind_name(e.trigger)) + ":" + e.name;
}

/// Static field holding a token: Session.s_<endpoint>_<field>.
std::string token_static(const std::string& ref) {
    return "s_" + strings::replace_all(ref, ".", "_");
}

// ------------------------------------------------------------- codegen ---

class AppGenerator {
public:
    explicit AppGenerator(AppSpec spec)
        : spec_(std::move(spec)), pb_(spec_.name) {}

    CorpusApp run() {
        main_class_ = spec_.package + ".MainActivity";
        session_class_ = spec_.package + ".Session";
        pb_.add_class(session_class_);
        auto main = pb_.add_class(main_class_, "android.app.Activity");

        for (const auto& endpoint : spec_.endpoints) {
            emit_endpoint(main, endpoint);
        }
        emit_filler();

        CorpusApp app;
        app.spec = spec_;
        app.program = pb_.build();
        for (const auto& endpoint : spec_.endpoints) {
            app.ground_truth.push_back(ground_truth_of(endpoint));
        }
        return app;
    }

private:
    std::string scheme() const { return spec_.https ? "https://" : "http://"; }

    // ---- parameter value expressions -------------------------------------
    Operand param_value(MethodBuilder& mb, const ParamSpec& p, int* unique) {
        switch (p.value) {
            case ParamSpec::Value::kConst:
                return cs(p.text);
            case ParamSpec::Value::kDynamicInt: {
                LocalId v = mb.local("dyn" + std::to_string((*unique)++), "int");
                // A small computation so the value is not a constant.
                mb.binop(v, BinaryOp::Op::kMul, ci(12347), ci(67));
                return Operand(v);
            }
            case ParamSpec::Value::kUserInput: {
                LocalId et = mb.local("edit" + std::to_string((*unique)++),
                                      "android.widget.EditText");
                LocalId v = mb.local("input" + std::to_string((*unique)++),
                                     "java.lang.String");
                mb.vcall(v, et, "android.widget.EditText.getText");
                return Operand(v);
            }
            case ParamSpec::Value::kResource: {
                LocalId res = mb.local("res" + std::to_string((*unique)++),
                                       "android.content.res.Resources");
                LocalId v = mb.local("resv" + std::to_string((*unique)++),
                                     "java.lang.String");
                mb.vcall(v, res, "android.content.res.Resources.getString", {cs(p.text)});
                return Operand(v);
            }
            case ParamSpec::Value::kToken: {
                LocalId v = mb.local("tok" + std::to_string((*unique)++),
                                     "java.lang.String");
                mb.load_static(v, session_class_, token_static(p.text));
                return Operand(v);
            }
            case ParamSpec::Value::kLocation: {
                LocalId v = mb.local("loc" + std::to_string((*unique)++),
                                     "java.lang.String");
                mb.load_static(v, session_class_, "s_loc_" + p.text);
                return Operand(v);
            }
        }
        return cs("");
    }

    // ---- URI construction ------------------------------------------------
    LocalId build_url(MethodBuilder& mb, const EndpointSpec& e, int* unique) {
        LocalId sb = mb.local("sb", "java.lang.StringBuilder");
        mb.new_object(sb, "java.lang.StringBuilder");
        mb.special(sb, "java.lang.StringBuilder.<init>", {cs(scheme() + e.host)});

        if (!e.path_alternatives.empty()) {
            // Branchy path selection (Fig. 3 shape): a mode value set by the
            // UI picks which path variant is appended.
            LocalId mode = mb.local("mode", "java.lang.String");
            mb.load_static(mode, session_class_, "s_mode_" + e.name);
            std::function<void(MethodBuilder&, std::size_t)> chain =
                [&](MethodBuilder& b, std::size_t index) {
                    if (index >= e.path_alternatives.size()) {
                        b.vcall(sb, sb, "java.lang.StringBuilder.append", {cs(e.path)});
                        return;
                    }
                    b.if_then_else(
                        eq(Operand(mode), cs("alt" + std::to_string(index))),
                        [&](MethodBuilder& bb) {
                            bb.vcall(sb, sb, "java.lang.StringBuilder.append",
                                     {cs(e.path_alternatives[index])});
                        },
                        [&](MethodBuilder& bb) { chain(bb, index + 1); });
                };
            chain(mb, 0);
        } else if (e.dynamic_path_id) {
            auto slash = e.path.rfind('/');
            std::string prefix = e.path.substr(0, slash + 1);  // keeps '/'
            std::string suffix = e.path.substr(slash + 1);
            LocalId id = mb.local("pathid", "int");
            mb.binop(id, BinaryOp::Op::kMul, ci(6), ci(7));
            mb.vcall(sb, sb, "java.lang.StringBuilder.append", {cs(prefix)});
            mb.vcall(sb, sb, "java.lang.StringBuilder.append", {Operand(id)});
            mb.vcall(sb, sb, "java.lang.StringBuilder.append", {cs("/" + suffix)});
        } else {
            mb.vcall(sb, sb, "java.lang.StringBuilder.append", {cs(e.path)});
        }

        bool first = true;
        for (const auto& p : e.query) {
            std::string sep = first ? "?" : "&";
            first = false;
            mb.vcall(sb, sb, "java.lang.StringBuilder.append", {cs(sep + p.key + "=")});
            Operand value = param_value(mb, p, unique);
            mb.vcall(sb, sb, "java.lang.StringBuilder.append", {value});
        }
        if (e.async_hops > 0) {
            // The produced fragment arrives through N static hops.
            LocalId frag = mb.local("frag", "java.lang.String");
            mb.load_static(frag, session_class_,
                           "s_hop" + std::to_string(e.async_hops) + "_" + e.name);
            mb.vcall(sb, sb, "java.lang.StringBuilder.append",
                     {cs(e.query.empty() ? "?" : "&")});
            mb.vcall(sb, sb, "java.lang.StringBuilder.append", {Operand(frag)});
        }
        LocalId url = mb.local("url", "java.lang.String");
        mb.vcall(url, sb, "java.lang.StringBuilder.toString");
        return url;
    }

    // ---- request bodies --------------------------------------------------
    /// Returns a local holding the body string (query-string form).
    LocalId build_query_body(MethodBuilder& mb, const EndpointSpec& e, int* unique,
                             LocalId* list_out) {
        LocalId list = mb.local("params", "java.util.ArrayList");
        mb.new_object(list, "java.util.ArrayList");
        mb.special(list, "java.util.ArrayList.<init>");
        for (const auto& p : e.body_params) {
            LocalId pair = mb.local("pair" + std::to_string((*unique)++),
                                    "org.apache.http.message.BasicNameValuePair");
            mb.new_object(pair, "org.apache.http.message.BasicNameValuePair");
            Operand value = param_value(mb, p, unique);
            mb.special(pair, "org.apache.http.message.BasicNameValuePair.<init>",
                       {cs(p.key), value});
            mb.vcall(std::nullopt, list, "java.util.ArrayList.add", {Operand(pair)});
        }
        *list_out = list;
        return list;
    }

    void put_json_fields(MethodBuilder& mb, LocalId json,
                         const std::vector<FieldSpec>& fields, int* unique, int depth) {
        for (const auto& f : fields) {
            switch (f.kind) {
                case FieldSpec::Kind::kObject: {
                    LocalId child = mb.local("jo" + std::to_string((*unique)++),
                                             "org.json.JSONObject");
                    mb.new_object(child, "org.json.JSONObject");
                    mb.special(child, "org.json.JSONObject.<init>", {cnull()});
                    if (depth < 3) put_json_fields(mb, child, f.children, unique, depth + 1);
                    mb.vcall(std::nullopt, json, "org.json.JSONObject.put",
                             {cs(f.key), Operand(child)});
                    break;
                }
                case FieldSpec::Kind::kArray: {
                    LocalId arr = mb.local("ja" + std::to_string((*unique)++),
                                           "org.json.JSONArray");
                    mb.new_object(arr, "org.json.JSONArray");
                    mb.special(arr, "org.json.JSONArray.<init>", {cnull()});
                    LocalId item = mb.local("ji" + std::to_string((*unique)++),
                                            "org.json.JSONObject");
                    mb.new_object(item, "org.json.JSONObject");
                    mb.special(item, "org.json.JSONObject.<init>", {cnull()});
                    if (depth < 3) put_json_fields(mb, item, f.children, unique, depth + 1);
                    mb.vcall(std::nullopt, arr, "org.json.JSONArray.put", {Operand(item)});
                    mb.vcall(std::nullopt, json, "org.json.JSONObject.put",
                             {cs(f.key), Operand(arr)});
                    break;
                }
                case FieldSpec::Kind::kInt: {
                    LocalId v = mb.local("jn" + std::to_string((*unique)++), "int");
                    mb.binop(v, BinaryOp::Op::kAdd, ci(20), ci(5));
                    mb.vcall(std::nullopt, json, "org.json.JSONObject.put",
                             {cs(f.key), Operand(v)});
                    break;
                }
                case FieldSpec::Kind::kBool:
                    mb.vcall(std::nullopt, json, "org.json.JSONObject.put",
                             {cs(f.key), cb(true)});
                    break;
                case FieldSpec::Kind::kString: {
                    LocalId et = mb.local("je" + std::to_string((*unique)++),
                                          "android.widget.EditText");
                    LocalId v = mb.local("jv" + std::to_string((*unique)++),
                                         "java.lang.String");
                    mb.vcall(v, et, "android.widget.EditText.getText");
                    mb.vcall(std::nullopt, json, "org.json.JSONObject.put",
                             {cs(f.key), Operand(v)});
                    break;
                }
            }
        }
    }

    // ---- response parsing -------------------------------------------------
    void parse_json_fields(MethodBuilder& mb, const EndpointSpec& e, LocalId json,
                           const std::vector<FieldSpec>& fields, int* unique, int depth) {
        for (const auto& f : fields) {
            if (!f.read_by_app) continue;
            switch (f.kind) {
                case FieldSpec::Kind::kObject: {
                    LocalId child = mb.local("ro" + std::to_string((*unique)++),
                                             "org.json.JSONObject");
                    mb.vcall(child, json, "org.json.JSONObject.getJSONObject",
                             {cs(f.key)});
                    if (depth < 3) {
                        parse_json_fields(mb, e, child, f.children, unique, depth + 1);
                    }
                    break;
                }
                case FieldSpec::Kind::kArray: {
                    LocalId arr = mb.local("ra" + std::to_string((*unique)++),
                                           "org.json.JSONArray");
                    mb.vcall(arr, json, "org.json.JSONObject.getJSONArray", {cs(f.key)});
                    LocalId item = mb.local("ri" + std::to_string((*unique)++),
                                            "org.json.JSONObject");
                    mb.vcall(item, arr, "org.json.JSONArray.getJSONObject", {ci(0)});
                    if (depth < 3) {
                        parse_json_fields(mb, e, item, f.children, unique, depth + 1);
                    }
                    break;
                }
                case FieldSpec::Kind::kInt: {
                    LocalId v = mb.local("rn" + std::to_string((*unique)++), "int");
                    mb.vcall(v, json, "org.json.JSONObject.getInt", {cs(f.key)});
                    break;
                }
                case FieldSpec::Kind::kBool: {
                    LocalId v = mb.local("rb" + std::to_string((*unique)++), "boolean");
                    mb.vcall(v, json, "org.json.JSONObject.getBoolean", {cs(f.key)});
                    break;
                }
                case FieldSpec::Kind::kString: {
                    LocalId v = mb.local("rs" + std::to_string((*unique)++),
                                         "java.lang.String");
                    mb.vcall(v, json, "org.json.JSONObject.getString", {cs(f.key)});
                    store_response_value(mb, e, f, v);
                    break;
                }
            }
        }
    }

    void parse_xml_fields(MethodBuilder& mb, LocalId body, const EndpointSpec& e,
                          int* unique) {
        LocalId parser = mb.local("parser", "javax.xml.parsers.DocumentBuilder");
        LocalId doc = mb.local("doc", "org.w3c.dom.Document");
        mb.vcall(doc, parser, "javax.xml.parsers.DocumentBuilder.parse", {Operand(body)});
        for (const auto& f : e.response_fields) {
            if (!f.read_by_app) continue;
            LocalId nodes = mb.local("nl" + std::to_string((*unique)++),
                                     "org.w3c.dom.NodeList");
            mb.vcall(nodes, doc, "org.w3c.dom.Document.getElementsByTagName", {cs(f.key)});
            LocalId el = mb.local("el" + std::to_string((*unique)++),
                                  "org.w3c.dom.Element");
            mb.vcall(el, nodes, "org.w3c.dom.NodeList.item", {ci(0)});
            LocalId v = mb.local("xv" + std::to_string((*unique)++), "java.lang.String");
            mb.vcall(v, el, "org.w3c.dom.Element.getTextContent");
            store_response_value(mb, e, f, v);
        }
    }

    /// Persists a read response value into the session static and/or the
    /// row under construction for its SQLite table, as the field spec
    /// demands. Database rows accumulate in one ContentValues per table
    /// (see parse_response) so every column lands in the same row.
    void store_response_value(MethodBuilder& mb, const EndpointSpec& e, const FieldSpec& f,
                              LocalId v) {
        if (f.store_to_static) {
            mb.store_static(session_class_, token_static(e.name + "." + f.key),
                            Operand(v));
        }
        if (!f.store_to_db.empty()) {
            mb.vcall(std::nullopt, db_rows_.at(f.store_to_db),
                     "android.content.ContentValues.put", {cs(f.key), Operand(v)});
        }
    }

    void collect_db_tables(const std::vector<FieldSpec>& fields, int depth,
                           std::vector<std::string>& tables) {
        for (const auto& f : fields) {
            if (!f.read_by_app) continue;
            if (!f.store_to_db.empty() &&
                std::find(tables.begin(), tables.end(), f.store_to_db) == tables.end()) {
                tables.push_back(f.store_to_db);
            }
            if (depth < 3) collect_db_tables(f.children, depth + 1, tables);
        }
    }

    void parse_response(MethodBuilder& mb, const EndpointSpec& e, LocalId body,
                        int* unique) {
        // One ContentValues per target table, inserted once after parsing:
        // cache-to-db apps write each row's columns together, and consumers
        // read several columns back from the same cursor row.
        std::vector<std::string> tables;
        collect_db_tables(e.response_fields, 0, tables);
        db_rows_.clear();
        for (const auto& table : tables) {
            LocalId values = mb.local("cv" + std::to_string((*unique)++),
                                      "android.content.ContentValues");
            mb.new_object(values, "android.content.ContentValues");
            mb.special(values, "android.content.ContentValues.<init>");
            db_rows_.emplace(table, values);
        }
        if (e.response == EndpointSpec::Response::kJson) {
            LocalId json = mb.local("rjson", "org.json.JSONObject");
            mb.new_object(json, "org.json.JSONObject");
            mb.special(json, "org.json.JSONObject.<init>", {Operand(body)});
            parse_json_fields(mb, e, json, e.response_fields, unique, 0);
        } else if (e.response == EndpointSpec::Response::kXml) {
            parse_xml_fields(mb, body, e, unique);
        }
        for (const auto& table : tables) {
            LocalId database = mb.local("db" + std::to_string((*unique)++),
                                        "android.database.sqlite.SQLiteDatabase");
            mb.vcall(std::nullopt, database,
                     "android.database.sqlite.SQLiteDatabase.insert",
                     {cs(table), cnull(), Operand(db_rows_.at(table))});
        }
        db_rows_.clear();
    }

    // ---- per-library request/response plumbing ----------------------------
    void emit_apache(MethodBuilder& mb, const EndpointSpec& e, LocalId url, int* unique) {
        std::string req_class = "org.apache.http.client.methods.Http";
        switch (e.method) {
            case http::Method::kGet: req_class += "Get"; break;
            case http::Method::kPost: req_class += "Post"; break;
            case http::Method::kPut: req_class += "Put"; break;
            default: req_class += "Delete"; break;
        }
        LocalId req = mb.local("req", req_class);
        mb.new_object(req, req_class);
        mb.special(req, req_class + ".<init>", {Operand(url)});
        for (const auto& h : e.headers) {
            Operand value = param_value(mb, h, unique);
            mb.vcall(std::nullopt, req, req_class + ".setHeader", {cs(h.key), value});
        }

        if (e.body == EndpointSpec::Body::kQueryString) {
            LocalId list = 0;
            build_query_body(mb, e, unique, &list);
            LocalId entity =
                mb.local("entity", "org.apache.http.client.entity.UrlEncodedFormEntity");
            mb.new_object(entity, "org.apache.http.client.entity.UrlEncodedFormEntity");
            mb.special(entity,
                       "org.apache.http.client.entity.UrlEncodedFormEntity.<init>",
                       {Operand(list)});
            mb.vcall(std::nullopt, req, req_class + ".setEntity", {Operand(entity)});
        } else if (e.body == EndpointSpec::Body::kJson) {
            LocalId json = mb.local("bjson", "org.json.JSONObject");
            mb.new_object(json, "org.json.JSONObject");
            mb.special(json, "org.json.JSONObject.<init>", {cnull()});
            put_json_fields(mb, json, e.body_fields, unique, 0);
            LocalId body_str = mb.local("bodyStr", "java.lang.String");
            mb.vcall(body_str, json, "org.json.JSONObject.toString");
            LocalId entity = mb.local("entity", "org.apache.http.entity.StringEntity");
            mb.new_object(entity, "org.apache.http.entity.StringEntity");
            mb.special(entity, "org.apache.http.entity.StringEntity.<init>",
                       {Operand(body_str)});
            mb.vcall(std::nullopt, req, req_class + ".setEntity", {Operand(entity)});
        }

        LocalId client = mb.local("client", "org.apache.http.client.HttpClient");
        LocalId resp = mb.local("resp", "org.apache.http.HttpResponse");
        mb.vcall(resp, client, "org.apache.http.client.HttpClient.execute",
                 {Operand(req)});
        if (e.response != EndpointSpec::Response::kNone) {
            LocalId entity2 = mb.local("rentity", "org.apache.http.HttpEntity");
            mb.vcall(entity2, resp, "org.apache.http.HttpResponse.getEntity");
            LocalId body = mb.local("rbody", "java.lang.String");
            mb.scall(body, "org.apache.http.util.EntityUtils.toString",
                     {Operand(entity2)});
            parse_response(mb, e, body, unique);
        }
    }

    void emit_okhttp(MethodBuilder& mb, const EndpointSpec& e, LocalId url, int* unique) {
        LocalId builder = mb.local("builder", "okhttp3.Request$Builder");
        mb.new_object(builder, "okhttp3.Request$Builder");
        mb.special(builder, "okhttp3.Request$Builder.<init>");
        mb.vcall(builder, builder, "okhttp3.Request$Builder.url", {Operand(url)});
        for (const auto& h : e.headers) {
            Operand value = param_value(mb, h, unique);
            mb.vcall(builder, builder, "okhttp3.Request$Builder.header",
                     {cs(h.key), value});
        }
        if (e.body == EndpointSpec::Body::kJson) {
            LocalId json = mb.local("bjson", "org.json.JSONObject");
            mb.new_object(json, "org.json.JSONObject");
            mb.special(json, "org.json.JSONObject.<init>", {cnull()});
            put_json_fields(mb, json, e.body_fields, unique, 0);
            LocalId body_str = mb.local("bodyStr", "java.lang.String");
            mb.vcall(body_str, json, "org.json.JSONObject.toString");
            LocalId rb = mb.local("rb", "okhttp3.RequestBody");
            mb.scall(rb, "okhttp3.RequestBody.create", {cnull(), Operand(body_str)});
            std::string verb = e.method == http::Method::kPut ? "put" : "post";
            mb.vcall(builder, builder, "okhttp3.Request$Builder." + verb, {Operand(rb)});
        } else if (e.method == http::Method::kDelete) {
            mb.vcall(builder, builder, "okhttp3.Request$Builder.delete");
        } else {
            mb.vcall(builder, builder, "okhttp3.Request$Builder.get");
        }
        LocalId req = mb.local("okreq", "okhttp3.Request");
        mb.vcall(req, builder, "okhttp3.Request$Builder.build");
        LocalId client = mb.local("okclient", "okhttp3.OkHttpClient");
        mb.new_object(client, "okhttp3.OkHttpClient");
        LocalId okcall = mb.local("okcall", "okhttp3.Call");
        mb.vcall(okcall, client, "okhttp3.OkHttpClient.newCall", {Operand(req)});
        LocalId resp = mb.local("okresp", "okhttp3.Response");
        mb.vcall(resp, okcall, "okhttp3.Call.execute");
        if (e.response != EndpointSpec::Response::kNone) {
            LocalId rbody = mb.local("okbody", "okhttp3.ResponseBody");
            mb.vcall(rbody, resp, "okhttp3.Response.body");
            LocalId body = mb.local("rbodys", "java.lang.String");
            mb.vcall(body, rbody, "okhttp3.ResponseBody.string");
            parse_response(mb, e, body, unique);
        }
    }

    void emit_urlconn(MethodBuilder& mb, const EndpointSpec& e, LocalId url, int* unique) {
        LocalId u = mb.local("u", "java.net.URL");
        mb.new_object(u, "java.net.URL");
        mb.special(u, "java.net.URL.<init>", {Operand(url)});
        LocalId conn = mb.local("conn", "java.net.HttpURLConnection");
        mb.vcall(conn, u, "java.net.URL.openConnection");
        for (const auto& h : e.headers) {
            Operand value = param_value(mb, h, unique);
            mb.vcall(std::nullopt, conn, "java.net.HttpURLConnection.setRequestProperty",
                     {cs(h.key), value});
        }
        if (e.method != http::Method::kGet) {
            mb.vcall(std::nullopt, conn, "java.net.HttpURLConnection.setRequestMethod",
                     {cs(std::string(http::method_name(e.method)))});
        }
        if (e.body == EndpointSpec::Body::kQueryString) {
            LocalId sb2 = mb.local("bsb", "java.lang.StringBuilder");
            mb.new_object(sb2, "java.lang.StringBuilder");
            mb.special(sb2, "java.lang.StringBuilder.<init>", {cs("")});
            bool first = true;
            for (const auto& p : e.body_params) {
                std::string sep = first ? "" : "&";
                first = false;
                mb.vcall(sb2, sb2, "java.lang.StringBuilder.append",
                         {cs(sep + p.key + "=")});
                Operand value = param_value(mb, p, unique);
                mb.vcall(sb2, sb2, "java.lang.StringBuilder.append", {value});
            }
            LocalId body_str = mb.local("bodyStr", "java.lang.String");
            mb.vcall(body_str, sb2, "java.lang.StringBuilder.toString");
            LocalId os = mb.local("os", "java.io.OutputStream");
            mb.vcall(os, conn, "java.net.HttpURLConnection.getOutputStream");
            mb.vcall(std::nullopt, os, "java.io.OutputStream.write", {Operand(body_str)});
        }
        LocalId in = mb.local("in", "java.io.InputStream");
        mb.vcall(in, conn, "java.net.HttpURLConnection.getInputStream");
        if (e.response != EndpointSpec::Response::kNone) {
            LocalId reader = mb.local("isr", "java.io.InputStreamReader");
            mb.new_object(reader, "java.io.InputStreamReader");
            mb.special(reader, "java.io.InputStreamReader.<init>", {Operand(in)});
            LocalId br = mb.local("br", "java.io.BufferedReader");
            mb.new_object(br, "java.io.BufferedReader");
            mb.special(br, "java.io.BufferedReader.<init>", {Operand(reader)});
            LocalId body = mb.local("rbody", "java.lang.String");
            mb.vcall(body, br, "java.io.BufferedReader.readLine");
            parse_response(mb, e, body, unique);
        }
    }

    /// volley / loopj: response arrives in a listener callback class.
    void emit_callback_lib(ClassBuilder& main, MethodBuilder& mb, const EndpointSpec& e,
                           LocalId url, int* unique) {
        std::string listener_class = spec_.package + ".Listener_" + e.name;
        {
            auto listener = pb_.add_class(listener_class);
            auto cb = listener.method(e.lib == HttpLib::kVolley ? "onResponse"
                                                                : "onSuccess");
            LocalId body = cb.param("body", "java.lang.String");
            int cb_unique = 0;
            if (e.response != EndpointSpec::Response::kNone) {
                // Parsing inside the callback.
                EndpointSpec copy = e;
                AppGenerator* self = this;
                (void)self;
                if (e.response == EndpointSpec::Response::kJson) {
                    LocalId json = cb.local("rjson", "org.json.JSONObject");
                    cb.new_object(json, "org.json.JSONObject");
                    cb.special(json, "org.json.JSONObject.<init>", {Operand(body)});
                    parse_json_fields(cb, copy, json, copy.response_fields, &cb_unique, 0);
                } else {
                    parse_xml_fields(cb, body, copy, &cb_unique);
                }
            }
            cb.ret();
        }
        (void)main;
        if (e.lib == HttpLib::kVolley) {
            LocalId ctx = mb.local("ctx", "android.content.Context");
            LocalId queue = mb.local("queue", "com.android.volley.RequestQueue");
            mb.scall(queue, "com.android.volley.toolbox.Volley.newRequestQueue",
                     {Operand(ctx)});
            LocalId listener = mb.local("listener", listener_class);
            mb.new_object(listener, listener_class);
            LocalId req = mb.local("vreq", "com.android.volley.toolbox.StringRequest");
            mb.new_object(req, "com.android.volley.toolbox.StringRequest");
            std::int64_t code = e.method == http::Method::kPost   ? 1
                                : e.method == http::Method::kPut  ? 2
                                : e.method == http::Method::kDelete ? 3
                                                                    : 0;
            mb.special(req, "com.android.volley.toolbox.StringRequest.<init>",
                       {ci(code), Operand(url), Operand(listener), cnull()});
            mb.vcall(std::nullopt, queue, "com.android.volley.RequestQueue.add",
                     {Operand(req)});
        } else {  // loopj
            LocalId client = mb.local("lclient", "com.loopj.android.http.AsyncHttpClient");
            mb.new_object(client, "com.loopj.android.http.AsyncHttpClient");
            LocalId handler = mb.local("lhandler", listener_class);
            mb.new_object(handler, listener_class);
            std::string verb = e.method == http::Method::kPost ? "post" : "get";
            mb.vcall(std::nullopt, client,
                     "com.loopj.android.http.AsyncHttpClient." + verb,
                     {Operand(url), Operand(handler)});
        }
        (void)unique;
    }

    // ---- async producers ---------------------------------------------------
    void emit_async_producers(const EndpointSpec& e) {
        // Hop 1: a location callback builds a query fragment with constant
        // keys and stores it.
        std::string cls = spec_.package + ".Producer_" + e.name;
        auto producer = pb_.add_class(cls);
        {
            auto mb = producer.method("onLocationChanged");
            LocalId loc = mb.param("location", "android.location.Location");
            LocalId lat = mb.local("lat", "java.lang.String");
            LocalId latd = mb.local("latd", "double");
            mb.vcall(latd, loc, "android.location.Location.getLatitude");
            mb.scall(lat, "java.lang.String.valueOf", {Operand(latd)});
            LocalId sb = mb.local("fsb", "java.lang.StringBuilder");
            mb.new_object(sb, "java.lang.StringBuilder");
            mb.special(sb, "java.lang.StringBuilder.<init>", {cs("lat=")});
            mb.vcall(sb, sb, "java.lang.StringBuilder.append", {Operand(lat)});
            mb.vcall(sb, sb, "java.lang.StringBuilder.append", {cs("&units=metric")});
            LocalId frag = mb.local("frag", "java.lang.String");
            mb.vcall(frag, sb, "java.lang.StringBuilder.toString");
            mb.store_static(session_class_, "s_hop1_" + e.name, Operand(frag));
            mb.ret();
        }
        pb_.register_event({cls, "onLocationChanged"}, EventKind::kOnLocation,
                           "location:" + e.name);
        if (e.async_hops >= 2) {
            // Hop 2: a custom-UI handler relays the fragment (appending one
            // more constant key) through a second static.
            auto mb = producer.method("onRelay");
            LocalId frag = mb.local("frag1", "java.lang.String");
            mb.load_static(frag, session_class_, "s_hop1_" + e.name);
            LocalId sb = mb.local("rsb", "java.lang.StringBuilder");
            mb.new_object(sb, "java.lang.StringBuilder");
            mb.special(sb, "java.lang.StringBuilder.<init>", {cnull()});
            mb.vcall(sb, sb, "java.lang.StringBuilder.append", {Operand(frag)});
            mb.vcall(sb, sb, "java.lang.StringBuilder.append", {cs("&lang=en")});
            LocalId frag2 = mb.local("frag2", "java.lang.String");
            mb.vcall(frag2, sb, "java.lang.StringBuilder.toString");
            mb.store_static(session_class_, "s_hop2_" + e.name, Operand(frag2));
            mb.ret();
        }
        if (e.async_hops >= 2) {
            pb_.register_event({cls, "onRelay"}, EventKind::kOnCustomUi,
                               "custom_ui:relay_" + e.name);
        }
    }

    // ---- intent routing ------------------------------------------------------
    void emit_intent_receiver(const EndpointSpec& e) {
        std::string cls = spec_.package + ".Receiver_" + e.name;
        auto receiver = pb_.add_class(cls);
        auto mb = receiver.method("onReceive");
        LocalId intent = mb.param("intent", "android.content.Intent");
        LocalId url = mb.local("url", "java.lang.String");
        mb.vcall(url, intent, "android.content.Intent.getStringExtra", {cs("url")});
        LocalId req = mb.local("req", "org.apache.http.client.methods.HttpGet");
        mb.new_object(req, "org.apache.http.client.methods.HttpGet");
        mb.special(req, "org.apache.http.client.methods.HttpGet.<init>", {Operand(url)});
        LocalId client = mb.local("client", "org.apache.http.client.HttpClient");
        LocalId resp = mb.local("resp", "org.apache.http.HttpResponse");
        mb.vcall(resp, client, "org.apache.http.client.HttpClient.execute",
                 {Operand(req)});
        mb.ret();
        pb_.register_event({cls, "onReceive"}, EventKind::kOnIntent, "intent:" + e.name);
    }

    // ---- endpoint entry ------------------------------------------------------
    void emit_endpoint(ClassBuilder& main, const EndpointSpec& e) {
        if (e.async_hops > 0) emit_async_producers(e);

        std::string handler_name = "on_" + e.name;
        auto mb = main.method(handler_name);
        int unique = 0;
        LocalId url;
        if (strings::starts_with(e.uri_from, "static:")) {
            url = mb.local("url", "java.lang.String");
            mb.load_static(url, session_class_, token_static(e.uri_from.substr(7)));
        } else if (strings::starts_with(e.uri_from, "db:")) {
            std::string ref = e.uri_from.substr(3);
            auto dot = ref.rfind('.');
            std::string table = ref.substr(0, dot);
            std::string column = ref.substr(dot + 1);
            LocalId database =
                mb.local("db", "android.database.sqlite.SQLiteDatabase");
            LocalId cursor = mb.local("cursor", "android.database.Cursor");
            mb.vcall(cursor, database, "android.database.sqlite.SQLiteDatabase.query",
                     {cs(table)});
            LocalId moved = mb.local("moved", "boolean");
            mb.vcall(moved, cursor, "android.database.Cursor.moveToNext");
            url = mb.local("url", "java.lang.String");
            mb.vcall(url, cursor, "android.database.Cursor.getString", {cs(column)});
        } else {
            url = build_url(mb, e, &unique);
        }

        if (e.consumer == EndpointSpec::Consumer::kMediaPlayer) {
            LocalId player = mb.local("player", "android.media.MediaPlayer");
            mb.vcall(std::nullopt, player, "android.media.MediaPlayer.setDataSource",
                     {Operand(url)});
            mb.ret();
            pb_.register_event({main_class_, handler_name}, e.trigger, trigger_label(e));
            return;
        }
        if (e.consumer == EndpointSpec::Consumer::kImageLoader) {
            LocalId loader = mb.local("loader", "com.squareup.picasso.Picasso");
            mb.vcall(std::nullopt, loader, "com.squareup.picasso.Picasso.load",
                     {Operand(url)});
            mb.ret();
            pb_.register_event({main_class_, handler_name}, e.trigger, trigger_label(e));
            return;
        }

        if (e.via_intent) {
            emit_intent_receiver(e);
            LocalId intent = mb.local("intent", "android.content.Intent");
            mb.new_object(intent, "android.content.Intent");
            mb.special(intent, "android.content.Intent.<init>");
            mb.vcall(std::nullopt, intent, "android.content.Intent.putExtra",
                     {cs("action"), cs(e.name)});
            mb.vcall(std::nullopt, intent, "android.content.Intent.putExtra",
                     {cs("url"), Operand(url)});
            LocalId ctx = mb.local("ctx", "android.content.Context");
            mb.vcall(std::nullopt, ctx, "android.content.Context.startActivity",
                     {Operand(intent)});
        } else {
            switch (e.lib) {
                case HttpLib::kApache: emit_apache(mb, e, url, &unique); break;
                case HttpLib::kOkHttp: emit_okhttp(mb, e, url, &unique); break;
                case HttpLib::kUrlConnection: emit_urlconn(mb, e, url, &unique); break;
                case HttpLib::kVolley:
                case HttpLib::kLoopj:
                    emit_callback_lib(main, mb, e, url, &unique);
                    break;
            }
        }
        mb.ret();
        pb_.register_event({main_class_, handler_name}, e.trigger, trigger_label(e));

        // One extra UI entry per path alternative so dynamic fuzzing can
        // reach every branch (each registered wrapper sets the mode first).
        for (std::size_t i = 0; i < e.path_alternatives.size(); ++i) {
            std::string wrapper_name = handler_name + "_alt" + std::to_string(i);
            auto wb = main.method(wrapper_name);
            wb.store_static(session_class_, "s_mode_" + e.name,
                            cs("alt" + std::to_string(i)));
            wb.vcall(std::nullopt, wb.self(), main_class_ + "." + handler_name);
            wb.ret();
            pb_.register_event({main_class_, wrapper_name}, e.trigger,
                               trigger_label(e) + "_alt" + std::to_string(i));
        }

        // Resource-table entries referenced by parameters.
        auto add_resources = [this](const std::vector<ParamSpec>& params) {
            for (const auto& p : params) {
                if (p.value == ParamSpec::Value::kResource) {
                    pb_.add_resource(p.text, "RES-" + p.text + "-VALUE");
                }
            }
        };
        add_resources(e.query);
        add_resources(e.body_params);
    }

    // ---- non-protocol bulk -----------------------------------------------------
    /// Emits UI/settings-style code with no network involvement: string
    /// shuffling, arithmetic loops, field bookkeeping. Some methods are
    /// registered as (network-silent) click handlers so they are reachable.
    void emit_filler() {
        if (spec_.filler_methods == 0) return;
        std::string cls_name = spec_.package + ".Ui";
        auto ui = pb_.add_class(cls_name);
        ui.field("mState", "java.lang.String");
        for (std::size_t i = 0; i < spec_.filler_methods; ++i) {
            std::string name = "layout" + std::to_string(i);
            auto mb = ui.method(name);
            LocalId acc = mb.local("acc", "int");
            mb.assign(acc, ci(static_cast<std::int64_t>(i)));
            LocalId j = mb.local("j", "int");
            mb.assign(j, ci(0));
            mb.while_loop(lt(Operand(j), ci(8)), [&](MethodBuilder& b) {
                b.binop(acc, BinaryOp::Op::kAdd, Operand(acc), Operand(j));
                b.binop(j, BinaryOp::Op::kAdd, Operand(j), ci(1));
            });
            LocalId label = mb.local("label", "java.lang.String");
            LocalId sb = mb.local("sb", "java.lang.StringBuilder");
            mb.new_object(sb, "java.lang.StringBuilder");
            mb.special(sb, "java.lang.StringBuilder.<init>", {cs("item-")});
            mb.vcall(sb, sb, "java.lang.StringBuilder.append", {Operand(acc)});
            mb.vcall(label, sb, "java.lang.StringBuilder.toString");
            mb.store_field(mb.self(), "mState", Operand(label));
            mb.ret();
            if (i % 7 == 0) {
                pb_.register_event({cls_name, name}, EventKind::kOnClick,
                                   "click:ui_" + std::to_string(i));
            }
        }
    }

    // ---- ground truth ---------------------------------------------------------
    static void collect_field_keywords(const std::vector<FieldSpec>& fields,
                                       std::vector<std::string>& read,
                                       std::vector<std::string>& wire, int depth) {
        for (const auto& f : fields) {
            wire.push_back(f.key);
            if (f.read_by_app) read.push_back(f.key);
            if (depth < 3 && (f.kind == FieldSpec::Kind::kObject ||
                              f.kind == FieldSpec::Kind::kArray)) {
                // Children visible only when the parent is read.
                std::vector<std::string> child_read, child_wire;
                collect_field_keywords(f.children, child_read, child_wire, depth + 1);
                wire.insert(wire.end(), child_wire.begin(), child_wire.end());
                if (f.read_by_app) {
                    read.insert(read.end(), child_read.begin(), child_read.end());
                }
            }
        }
    }

    GroundTruthEndpoint ground_truth_of(const EndpointSpec& e) const {
        GroundTruthEndpoint gt;
        gt.name = e.name;
        gt.method = e.method;
        gt.trigger = e.trigger;
        gt.via_intent = e.via_intent;
        gt.async_hops = e.async_hops;
        for (const auto& p : e.query) gt.request_keywords.push_back(p.key);
        for (const auto& p : e.body_params) gt.request_keywords.push_back(p.key);
        if (e.async_hops > 0) {
            gt.request_keywords.push_back("lat");
            gt.request_keywords.push_back("units");
            if (e.async_hops >= 2) gt.request_keywords.push_back("lang");
        }
        if (e.body == EndpointSpec::Body::kJson) {
            std::vector<std::string> read, wire;
            collect_field_keywords(e.body_fields, read, wire, 0);
            gt.request_keywords.insert(gt.request_keywords.end(), wire.begin(),
                                       wire.end());
            gt.request_payload = http::BodyKind::kJson;
        } else if (e.body == EndpointSpec::Body::kQueryString || !e.query.empty() ||
                   e.async_hops > 0) {
            gt.request_payload = http::BodyKind::kQueryString;
        }
        if (e.response != EndpointSpec::Response::kNone) {
            std::vector<std::string> read, wire;
            collect_field_keywords(e.response_fields, read, wire, 0);
            gt.response_keywords = std::move(read);
            gt.wire_response_keywords = std::move(wire);
            gt.has_response_body = !gt.response_keywords.empty();
            gt.response_kind = e.response == EndpointSpec::Response::kJson
                                   ? http::BodyKind::kJson
                                   : http::BodyKind::kXml;
            gt.paired = gt.has_response_body;
        }
        return gt;
    }

    AppSpec spec_;
    ProgramBuilder pb_;
    std::string main_class_;
    std::string session_class_;
    /// Per-table ContentValues for the response currently being parsed
    /// (populated by parse_response, read by store_response_value).
    std::map<std::string, LocalId> db_rows_;
};

// ------------------------------------------------------------ fake server --

text::Json synthesize_json(const std::vector<FieldSpec>& fields, int depth) {
    text::Json obj = text::Json::object();
    for (const auto& f : fields) {
        switch (f.kind) {
            case FieldSpec::Kind::kString:
                obj.set(f.key,
                        text::Json(f.is_url
                                       ? "http://cdn.example.com/" + f.key + "/1"
                                       : "value-" + f.key + "-abcdefghijklmnopqrstuv"));
                break;
            case FieldSpec::Kind::kInt: obj.set(f.key, text::Json(7)); break;
            case FieldSpec::Kind::kBool: obj.set(f.key, text::Json(true)); break;
            case FieldSpec::Kind::kObject:
                obj.set(f.key, depth < 3 ? synthesize_json(f.children, depth + 1)
                                         : text::Json::object());
                break;
            case FieldSpec::Kind::kArray: {
                text::Json arr = text::Json::array();
                if (depth < 3) {
                    arr.push_back(synthesize_json(f.children, depth + 1));
                    arr.push_back(synthesize_json(f.children, depth + 1));
                }
                obj.set(f.key, std::move(arr));
                break;
            }
        }
    }
    return obj;
}

std::string synthesize_xml(const std::vector<FieldSpec>& fields) {
    std::string out = "<resp>";
    for (const auto& f : fields) {
        std::string value =
            f.is_url ? "http://cdn.example.com/" + f.key + "/1" : "v-" + f.key;
        out += "<" + f.key + ">" + value + "</" + f.key + ">";
    }
    out += "</resp>";
    return out;
}

}  // namespace

std::unique_ptr<interp::FakeServer> CorpusApp::make_server() const {
    auto server = std::make_unique<interp::ScriptedServer>();
    for (const auto& e : spec.endpoints) {
        std::vector<std::string> routes;
        if (!e.uri_from.empty()) {
            // Response-derived fetch: the endpoint has no host/path of its
            // own — its URL is synthesized by the producer's response as
            // "http://cdn.example.com/<field>/1". Key the route on that
            // path; an empty prefix would shadow every route added after
            // this endpoint (first match wins).
            if (e.response == EndpointSpec::Response::kNone) continue;
            auto dot = e.uri_from.rfind('.');
            routes.push_back("cdn.example.com/" + e.uri_from.substr(dot + 1) + "/");
        } else if (e.dynamic_path_id) {
            auto slash = e.path.rfind('/');
            routes.push_back(e.host + e.path.substr(0, slash + 1));
        } else {
            routes.push_back(e.host + e.path);
            // Branchy-path endpoints serve the same payload on every variant.
            for (const auto& alt : e.path_alternatives) {
                routes.push_back(e.host + alt);
            }
        }
        http::BodyKind kind = http::BodyKind::kNone;
        std::string payload;
        if (e.response == EndpointSpec::Response::kJson) {
            // Real servers decorate responses with metadata the app ignores;
            // these keys appear on the wire but never in signatures (the
            // Fig. 7 trace>signature direction and Table 2's response Rn).
            text::Json body = synthesize_json(e.response_fields, 0);
            body.set("meta_ts", text::Json("2016-12-12T09:00:00Z"));
            body.set("meta_node", text::Json("edge-cache-sfo-0042.example.net"));
            body.set("meta_version", text::Json("api-build-20161212-rc7"));
            body.set("meta_trace", text::Json("0f9a3c77-52b1-4d66-9d20-8e2f9f1b6a31"));
            kind = http::BodyKind::kJson;
            payload = body.dump();
        } else if (e.response == EndpointSpec::Response::kXml) {
            kind = http::BodyKind::kXml;
            payload = synthesize_xml(e.response_fields);
        }
        for (const auto& route : routes) {
            server->route_fixed(route, kind, payload);
        }
    }
    // Media/thumbnail CDN catch-all for response-derived fetches.
    server->route_fixed("cdn.example.com", http::BodyKind::kBinary, "MEDIA-PAYLOAD");
    return server;
}

CorpusApp generate(AppSpec spec) { return AppGenerator(std::move(spec)).run(); }

}  // namespace extractocol::corpus
