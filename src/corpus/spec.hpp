// Synthetic app corpus (the evaluation substrate). Real Google-Play APKs are
// not available offline, so each evaluated app is generated from a spec that
// reproduces the protocol-relevant *shape* of the paper's subjects:
// which HTTP library it uses, how many endpoints of which method/body kind,
// which events trigger them (plain clicks vs custom UI vs logins vs timers
// vs server pushes vs purchase-style actions), token dependencies, async
// event chains, and intent-routed messages.
//
// From one spec the corpus derives three mutually consistent artifacts:
//   1. the app's IR program (built with the xir builder DSL),
//   2. the scripted fake server answering its endpoints,
//   3. the machine-readable ground truth used as the "source code analysis"
//      column of Table 1.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "http/message.hpp"
#include "interp/interpreter.hpp"
#include "xir/ir.hpp"

namespace extractocol::corpus {

enum class HttpLib { kApache, kOkHttp, kVolley, kUrlConnection, kLoopj };

/// One query-string / form parameter.
struct ParamSpec {
    enum class Value {
        kConst,      // constant string baked into code
        kDynamicInt, // integer computed at runtime -> [0-9]+
        kUserInput,  // EditText.getText() -> .*
        kResource,   // value from the resource table (api keys) -> .*
        kToken,      // field of an earlier login response, via a static
        kLocation,   // location-service value crossing one async hop
    };
    std::string key;
    Value value = Value::kConst;
    std::string text;  // kConst: the value; kResource: resource id;
                       // kToken: "<endpoint>.<field>"
};

/// One field of a JSON (or XML) payload.
struct FieldSpec {
    enum class Kind { kString, kInt, kBool, kObject, kArray };
    std::string key;
    Kind kind = Kind::kString;
    std::vector<FieldSpec> children;  // kObject / kArray (element shape)
    /// Response-only: whether app code reads this field (unread keys appear
    /// on the wire but not in Extractocol's signature — the Fig. 7 gap).
    bool read_by_app = true;
    /// Response-only: store the read value into a session static so later
    /// requests can reference it via ParamSpec::kToken.
    bool store_to_static = false;
    /// Response-only: insert the read value into this SQLite table (column =
    /// key) — the TED-style DB-mediated dependency channel.
    std::string store_to_db;
    /// Response-only: the server synthesizes a fetchable URL for this field
    /// (ad/media/thumbnail URIs consumed by later transactions).
    bool is_url = false;
};

struct EndpointSpec {
    std::string name;  // unique per app; used in labels and ground truth
    http::Method method = http::Method::kGet;
    HttpLib lib = HttpLib::kApache;
    std::string host;                 // "api.example.com"
    std::string path;                 // "/v1/feed.json"
    /// Branchy path construction (Diode-style): the handler selects between
    /// `path` and each alternative -> an alternation in the URI signature.
    std::vector<std::string> path_alternatives;
    bool dynamic_path_id = false;     // numeric id segment inserted before the
                                      // last path element -> [0-9]+
    std::vector<ParamSpec> query;     // URI query string
    /// Extra request headers (name = ParamSpec::key), e.g. Kayak's
    /// app-gating User-Agent or radio reddit's session cookie.
    std::vector<ParamSpec> headers;
    /// When set, the URI is not built in code but comes verbatim from an
    /// earlier response: "static:<endpoint>.<field>" or "db:<table>.<column>".
    /// Its signature degrades to GET (.*) with a dependency edge.
    std::string uri_from;
    /// How the fetched data is consumed: plain HTTP client, a media player
    /// (MediaPlayer.setDataSource — its own DP), or an image loader.
    enum class Consumer { kHttp, kMediaPlayer, kImageLoader };
    Consumer consumer = Consumer::kHttp;

    enum class Body { kNone, kQueryString, kJson };
    Body body = Body::kNone;
    std::vector<ParamSpec> body_params;   // kQueryString
    std::vector<FieldSpec> body_fields;   // kJson

    enum class Response { kNone, kJson, kXml };
    Response response = Response::kNone;
    std::vector<FieldSpec> response_fields;

    xir::EventKind trigger = xir::EventKind::kOnClick;
    /// Message routed through an Android intent: Extractocol's documented
    /// blind spot (§4); visible to manual fuzzing.
    bool via_intent = false;
    /// Number of async-event hops the URI's dynamic part crosses (0 = none,
    /// 1 = one static-field hop — recovered when the heuristic is on,
    /// 2 = beyond the one-hop limit — Extractocol degrades to wildcards).
    int async_hops = 0;
};

struct AppSpec {
    std::string name;
    std::string package;  // "com.fivemiles"
    bool open_source = false;
    bool https = true;
    std::vector<EndpointSpec> endpoints;
    /// Non-protocol code bulk (UI logic, settings, layout math...). Real apps
    /// are mostly such code, which is why slices cover only a few percent of
    /// statements (Fig. 3's 6.3%).
    std::size_t filler_methods = 40;
};

/// Per-endpoint ground truth derived from the spec ("source code analysis").
struct GroundTruthEndpoint {
    std::string name;
    http::Method method = http::Method::kGet;
    http::BodyKind request_payload = http::BodyKind::kNone;  // query/json incl. uri query
    bool has_response_body = false;
    http::BodyKind response_kind = http::BodyKind::kNone;
    std::vector<std::string> request_keywords;
    std::vector<std::string> response_keywords;       // keys the app reads
    std::vector<std::string> wire_response_keywords;  // keys on the wire
    xir::EventKind trigger = xir::EventKind::kOnClick;
    bool via_intent = false;
    int async_hops = 0;
    bool paired = false;
};

struct CorpusApp {
    AppSpec spec;
    xir::Program program;
    std::vector<GroundTruthEndpoint> ground_truth;

    [[nodiscard]] std::unique_ptr<interp::FakeServer> make_server() const;
};

/// Generates the program + server + ground truth from a spec.
CorpusApp generate(AppSpec spec);

}  // namespace extractocol::corpus
