#include "cache/cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#include "cache/codec.hpp"
#include "obs/metrics.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"
#include "support/sha256.hpp"

namespace extractocol::cache {

namespace {

namespace fs = std::filesystem;

constexpr std::string_view kEntrySuffix = ".xce";

std::string hex16(std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
    return std::string(buf);
}

/// Strict "name=value" token parse; returns nullopt when the prefix differs.
std::optional<std::string_view> token_value(std::string_view token,
                                            std::string_view name) {
    if (token.size() <= name.size() + 1) return std::nullopt;
    if (token.compare(0, name.size(), name) != 0) return std::nullopt;
    if (token[name.size()] != '=') return std::nullopt;
    return token.substr(name.size() + 1);
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
    if (text.empty()) return false;
    std::uint64_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9') return false;
        if (value > (~std::uint64_t{0} - (c - '0')) / 10) return false;
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out = value;
    return true;
}

/// Splits the envelope header line into whitespace-separated tokens.
std::vector<std::string_view> split_tokens(std::string_view line) {
    std::vector<std::string_view> tokens;
    std::size_t pos = 0;
    while (pos < line.size()) {
        std::size_t space = line.find(' ', pos);
        if (space == std::string_view::npos) space = line.size();
        if (space > pos) tokens.push_back(line.substr(pos, space - pos));
        pos = space + 1;
    }
    return tokens;
}

}  // namespace

ReportCache::ReportCache(CacheOptions options) : options_(std::move(options)) {
    std::error_code ec;
    fs::create_directories(options_.dir, ec);
    if (ec) {
        log::warn().kv("dir", options_.dir).kv("error", ec.message())
            << "cache: cannot create directory; every lookup will miss";
    }
    m_hits_ = &obs::counter("cache.hits");
    m_misses_ = &obs::counter("cache.misses");
    m_stores_ = &obs::counter("cache.stores");
    m_corrupt_ = &obs::counter("cache.corrupt_entries");
    m_evictions_ = &obs::counter("cache.evictions");
    m_bytes_ = &obs::gauge("cache.bytes");
    // One full scan at construction seeds the running total; after this,
    // stores/removals adjust it incrementally (a per-operation rescan would
    // make every cache touch O(entries) on large directories) and the
    // eviction pass — which must scan anyway — resyncs it exactly.
    bytes_estimate_.store(static_cast<std::int64_t>(bytes_on_disk()),
                          std::memory_order_relaxed);
    update_bytes_gauge();
}

std::string ReportCache::key_for(std::string_view xapk_text) {
    // 128 bits of truncated SHA-256. The key must be collision-resistant,
    // not just well-distributed: a key collision makes the cache serve one
    // app's report for another app's bytes, and no envelope check can catch
    // that (the key echo and payload checksum validate the entry, not the
    // input). FNV-family hashes have adversarially constructible collisions,
    // so they stay confined to the envelope checksum (accidental-corruption
    // detection) and never decide identity. Everything here is a pure
    // function of the input bytes: no std::hash, no intern Symbols, no
    // pointers — the key must mean the same thing to every process that
    // ever opens this cache directory.
    return support::sha256_hex128(xapk_text);
}

std::filesystem::path ReportCache::entry_path(const std::string& key) const {
    return fs::path(options_.dir) / (key + std::string(kEntrySuffix));
}

void ReportCache::mark_corrupt(const std::filesystem::path& path,
                               const std::string& key, const char* why,
                               std::uint64_t entry_bytes) {
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    m_corrupt_->add();
    log::warn()
            .kv("file", path.string())
            .kv("key", key)
            .kv("reason", why)
        << "cache: corrupt entry dropped, falling back to cold analysis";
    std::error_code ec;
    // best-effort; a locked file just stays corrupt
    if (fs::remove(path, ec) && !ec) adjust_bytes(-static_cast<std::int64_t>(entry_bytes));
}

std::optional<core::AnalysisReport> ReportCache::load(const std::string& key) {
    fs::path path = entry_path(key);
    std::string raw;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            m_misses_->add();
            return std::nullopt;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        raw = buffer.str();
    }

    // Every integrity failure funnels through here: count, delete, miss.
    auto corrupt = [&](const char* why) -> std::optional<core::AnalysisReport> {
        mark_corrupt(path, key, why, raw.size());
        misses_.fetch_add(1, std::memory_order_relaxed);
        m_misses_->add();
        return std::nullopt;
    };

    std::size_t newline = raw.find('\n');
    if (newline == std::string::npos) return corrupt("no header line");
    std::string_view header(raw.data(), newline);
    std::string_view payload(raw.data() + newline + 1, raw.size() - newline - 1);

    std::vector<std::string_view> tokens = split_tokens(header);
    if (tokens.size() != 5 || tokens[0] != kCacheSchema) {
        return corrupt("bad schema tag");
    }
    std::optional<std::string_view> key_field = token_value(tokens[1], "key");
    std::optional<std::string_view> version_field = token_value(tokens[2], "analyzer");
    std::optional<std::string_view> bytes_field = token_value(tokens[3], "bytes");
    std::optional<std::string_view> fnv_field = token_value(tokens[4], "fnv");
    if (!key_field || !version_field || !bytes_field || !fnv_field) {
        return corrupt("malformed header");
    }
    if (*key_field != key) return corrupt("key mismatch");
    if (*version_field != options_.analyzer_version) {
        // Version skew is a *clean* invalidation, not corruption: the entry
        // is intact, it just answers for a different analyzer.
        evictions_.fetch_add(1, std::memory_order_relaxed);
        m_evictions_->add();
        misses_.fetch_add(1, std::memory_order_relaxed);
        m_misses_->add();
        log::info()
                .kv("file", path.string())
                .kv("entry_version", std::string(*version_field))
                .kv("analyzer_version", options_.analyzer_version)
            << "cache: analyzer version skew, entry invalidated";
        std::error_code ec;
        if (fs::remove(path, ec) && !ec) adjust_bytes(-static_cast<std::int64_t>(raw.size()));
        return std::nullopt;
    }
    std::uint64_t expected_bytes = 0;
    if (!parse_u64(*bytes_field, expected_bytes)) return corrupt("malformed header");
    // An exact length match catches both truncation and appended garbage.
    if (payload.size() != expected_bytes) return corrupt("payload length mismatch");
    if (hex16(fnv1a(payload)) != *fnv_field) return corrupt("payload checksum mismatch");

    Result<text::Json> parsed = text::parse_json(payload);
    if (!parsed.ok()) return corrupt("payload is not valid JSON");
    const text::Json& doc = parsed.value();
    const text::Json* report_doc = doc.is_object() ? doc.find("report") : nullptr;
    const text::Json* check = doc.is_object() ? doc.find("check") : nullptr;
    if (report_doc == nullptr || check == nullptr || !check->is_object()) {
        return corrupt("payload missing report/check");
    }
    Result<core::AnalysisReport> report = report_from_json(*report_doc);
    if (!report.ok()) return corrupt(report.error().message.c_str());
    // The stored telemetry counts double as a decode cross-check: a codec
    // drift (or a JSON-valid corruption the checksum somehow missed) that
    // changes result sizes is caught before the report is served.
    const text::Json* txn_count = check->find("transactions");
    const text::Json* dep_count = check->find("dependencies");
    if (txn_count == nullptr || !txn_count->is_int() || dep_count == nullptr ||
        !dep_count->is_int() ||
        static_cast<std::uint64_t>(txn_count->as_int()) !=
            report.value().transactions.size() ||
        static_cast<std::uint64_t>(dep_count->as_int()) !=
            report.value().dependencies.size()) {
        return corrupt("telemetry cross-check failed");
    }

    hits_.fetch_add(1, std::memory_order_relaxed);
    m_hits_->add();
    return std::move(report).take();
}

bool ReportCache::store(const std::string& key, const core::AnalysisReport& report) {
    text::Json payload_doc = text::Json::object();
    payload_doc.set("report", report_to_json(report));
    text::Json check = text::Json::object();
    check.set("transactions",
              text::Json(static_cast<std::int64_t>(report.transactions.size())));
    check.set("dependencies",
              text::Json(static_cast<std::int64_t>(report.dependencies.size())));
    payload_doc.set("check", std::move(check));
    std::string payload = payload_doc.dump();

    std::string header;
    header.reserve(kCacheSchema.size() + key.size() + 96);
    header += kCacheSchema;
    header += " key=";
    header += key;
    header += " analyzer=";
    header += options_.analyzer_version;
    header += " bytes=";
    header += std::to_string(payload.size());
    header += " fnv=";
    header += hex16(fnv1a(payload));
    header += '\n';

    // Unique hidden temp name per (process, store): concurrent writers each
    // build their own file and race only on the atomic rename below.
    std::uint64_t seq = temp_seq_.fetch_add(1, std::memory_order_relaxed);
    fs::path temp = fs::path(options_.dir) /
                    ("." + key + ".tmp." + std::to_string(::getpid()) + "." +
                     std::to_string(seq));
    fs::path final_path = entry_path(key);
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out) {
            log::warn().kv("file", temp.string())
                << "cache: cannot open temp file; entry not stored";
            return false;
        }
        out << header << payload;
        out.flush();
        if (!out) {
            log::warn().kv("file", temp.string())
                << "cache: short write; entry not stored";
            std::error_code ec;
            fs::remove(temp, ec);
            return false;
        }
    }
    // Replaced-entry size, sampled just before the rename: the running byte
    // total only needs the delta. A concurrent writer racing the same key
    // can skew this sample, so the total is an estimate between eviction
    // passes (which rescan and resync it exactly).
    std::error_code size_ec;
    std::uintmax_t replaced = fs::file_size(final_path, size_ec);
    std::int64_t old_bytes = size_ec ? 0 : static_cast<std::int64_t>(replaced);
    // POSIX rename is atomic and replaces any existing entry whole:
    // last-writer-wins, and a concurrent reader sees either the old
    // complete envelope or the new one, never a mix.
    std::error_code ec;
    fs::rename(temp, final_path, ec);
    if (ec) {
        log::warn().kv("file", final_path.string()).kv("error", ec.message())
            << "cache: rename failed; entry not stored";
        fs::remove(temp, ec);
        return false;
    }
    adjust_bytes(static_cast<std::int64_t>(header.size() + payload.size()) - old_bytes);
    stores_.fetch_add(1, std::memory_order_relaxed);
    m_stores_->add();
    if (options_.max_bytes > 0) evict_to_limit();
    return true;
}

std::uint64_t ReportCache::bytes_on_disk() const {
    std::uint64_t total = 0;
    std::error_code ec;
    for (const fs::directory_entry& entry : fs::directory_iterator(options_.dir, ec)) {
        std::string name = entry.path().filename().string();
        if (name.empty() || name.front() == '.') continue;
        if (name.size() <= kEntrySuffix.size() ||
            name.compare(name.size() - kEntrySuffix.size(), kEntrySuffix.size(),
                         kEntrySuffix) != 0) {
            continue;
        }
        std::error_code size_ec;
        std::uintmax_t size = entry.file_size(size_ec);
        if (!size_ec) total += static_cast<std::uint64_t>(size);
    }
    return total;
}

void ReportCache::evict_to_limit() {
    std::lock_guard<std::mutex> lock(evict_mutex_);
    struct Entry {
        fs::file_time_type mtime;
        std::string name;  // deterministic tie-break for equal mtimes
        fs::path path;
        std::uint64_t size = 0;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;
    std::error_code ec;
    for (const fs::directory_entry& item : fs::directory_iterator(options_.dir, ec)) {
        std::string name = item.path().filename().string();
        if (name.empty() || name.front() == '.') continue;
        if (name.size() <= kEntrySuffix.size() ||
            name.compare(name.size() - kEntrySuffix.size(), kEntrySuffix.size(),
                         kEntrySuffix) != 0) {
            continue;
        }
        std::error_code item_ec;
        std::uintmax_t size = item.file_size(item_ec);
        if (item_ec) continue;
        fs::file_time_type mtime = item.last_write_time(item_ec);
        if (item_ec) continue;
        total += static_cast<std::uint64_t>(size);
        entries.push_back({mtime, name, item.path(), static_cast<std::uint64_t>(size)});
    }
    // The pass scanned anyway — resync the running estimate to the exact
    // on-disk total (minus whatever gets evicted below).
    auto resync = [&] {
        bytes_estimate_.store(static_cast<std::int64_t>(total),
                              std::memory_order_relaxed);
        update_bytes_gauge();
    };
    if (total <= options_.max_bytes) {
        resync();
        return;
    }
    std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
        if (a.mtime != b.mtime) return a.mtime < b.mtime;
        return a.name < b.name;
    });
    for (const Entry& entry : entries) {
        if (total <= options_.max_bytes) break;
        std::error_code remove_ec;
        if (!fs::remove(entry.path, remove_ec) || remove_ec) continue;
        total -= entry.size;
        evictions_.fetch_add(1, std::memory_order_relaxed);
        m_evictions_->add();
        log::info().kv("file", entry.path.string())
            << "cache: evicted oldest entry over max_bytes";
    }
    resync();
}

void ReportCache::adjust_bytes(std::int64_t delta) {
    bytes_estimate_.fetch_add(delta, std::memory_order_relaxed);
    update_bytes_gauge();
}

void ReportCache::update_bytes_gauge() {
    std::int64_t bytes = bytes_estimate_.load(std::memory_order_relaxed);
    m_bytes_->set(bytes > 0 ? bytes : 0);
}

CacheStats ReportCache::stats() const {
    CacheStats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.stores = stores_.load(std::memory_order_relaxed);
    out.corrupt_entries = corrupt_.load(std::memory_order_relaxed);
    out.evictions = evictions_.load(std::memory_order_relaxed);
    return out;
}

text::Json ReportCache::stats_json() const {
    CacheStats s = stats();
    text::Json obj = text::Json::object();
    obj.set("dir", text::Json(options_.dir));
    obj.set("hits", text::Json(static_cast<std::int64_t>(s.hits)));
    obj.set("misses", text::Json(static_cast<std::int64_t>(s.misses)));
    obj.set("stores", text::Json(static_cast<std::int64_t>(s.stores)));
    obj.set("corrupt_entries",
            text::Json(static_cast<std::int64_t>(s.corrupt_entries)));
    obj.set("evictions", text::Json(static_cast<std::int64_t>(s.evictions)));
    std::int64_t bytes = bytes_estimate_.load(std::memory_order_relaxed);
    obj.set("bytes", text::Json(bytes > 0 ? bytes : std::int64_t{0}));
    return obj;
}

// ------------------------------------------------------ cached batching --

namespace {

/// Hit-scan state shared by the two analyze_batch_cached overloads.
struct HitScan {
    CachedBatch batch;
    std::vector<std::string> keys;
    std::vector<std::size_t> miss_index;
    std::vector<core::BatchInput> miss_inputs;
};

HitScan scan_hits(ReportCache* cache, std::vector<core::BatchInput> inputs) {
    HitScan scan;
    scan.batch.items.resize(inputs.size());
    scan.batch.from_cache.assign(inputs.size(), 0);
    scan.keys.resize(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        if (cache != nullptr) {
            scan.keys[i] = ReportCache::key_for(inputs[i].text);
            if (std::optional<core::AnalysisReport> report = cache->load(scan.keys[i])) {
                scan.batch.items[i].file = inputs[i].file;
                scan.batch.items[i].report = std::move(*report);
                scan.batch.from_cache[i] = 1;
                scan.batch.hits += 1;
                continue;
            }
        }
        scan.miss_index.push_back(i);
    }
    scan.miss_inputs.reserve(scan.miss_index.size());
    for (std::size_t i : scan.miss_index) scan.miss_inputs.push_back(std::move(inputs[i]));
    scan.batch.misses = scan.miss_inputs.size();
    // Keys are still needed for the store step, so the batch gets a copy
    // (empty strings when running cacheless — no key was ever computed).
    scan.batch.keys = scan.keys;
    return scan;
}

void merge_misses(HitScan& scan, ReportCache* cache,
                  std::vector<core::BatchItem> analyzed) {
    for (std::size_t j = 0; j < analyzed.size(); ++j) {
        std::size_t i = scan.miss_index[j];
        scan.batch.items[i] = std::move(analyzed[j]);
        if (!scan.batch.items[i].ok()) continue;
        // Per-run counter deltas are snapshot windows of the process-global
        // metrics registry; whenever analyses overlap — batch --jobs, or
        // concurrent daemon connections — the windows contaminate each
        // other, so the values are not a function of the input bytes. A
        // cached report must be exactly that function, and it is stripped
        // on the served copy too (not just the stored one) so a cold miss
        // and its warm replay stay byte-identical. The aggregate registry
        // (--metrics, --metrics-prom) keeps the exact counts.
        core::AnalysisReport& report = *scan.batch.items[i].report;
        report.stats.counters.clear();
        report.audit.unmodeled_apis.clear();
        // Errors are never cached: a contained failure must re-analyze next
        // time (the failure may be environmental, and serving a stored
        // error for content that now analyzes would be wrong output).
        if (cache != nullptr) cache->store(scan.keys[i], report);
    }
}

}  // namespace

CachedBatch analyze_batch_cached(const core::Analyzer& analyzer, ReportCache* cache,
                                 std::vector<core::BatchInput> inputs) {
    HitScan scan = scan_hits(cache, std::move(inputs));
    if (!scan.miss_inputs.empty()) {
        merge_misses(scan, cache, analyzer.analyze_batch(std::move(scan.miss_inputs)));
    }
    return std::move(scan.batch);
}

CachedBatch analyze_batch_cached(const core::AnalyzerOptions& options,
                                 ReportCache* cache,
                                 std::vector<core::BatchInput> inputs) {
    HitScan scan = scan_hits(cache, std::move(inputs));
    core::AnalyzerOptions opts = options;
    if (opts.batch_progress) {
        // Rebase progress over the whole batch: hits are already done.
        std::size_t base = scan.batch.hits;
        std::size_t total = scan.batch.items.size();
        auto inner = opts.batch_progress;
        if (base > 0) inner(base, total);
        opts.batch_progress = [base, total, inner](std::size_t done, std::size_t) {
            inner(base + done, total);
        };
    }
    if (!scan.miss_inputs.empty()) {
        core::Analyzer analyzer(opts);
        merge_misses(scan, cache, analyzer.analyze_batch(std::move(scan.miss_inputs)));
    }
    return std::move(scan.batch);
}

}  // namespace extractocol::cache
