#include "cache/server.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "support/log.hpp"
#include "text/json.hpp"

namespace extractocol::cache {

namespace {

// Self-pipe write end for the signal handlers. write() is async-signal-safe;
// the accept loop polls the read end. Set before handlers are installed.
int g_wake_fd = -1;

void wake_on_signal(int) {
    char byte = 'x';
    [[maybe_unused]] ssize_t n = ::write(g_wake_fd, &byte, 1);
}

bool write_all(int fd, std::string_view data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
        ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/// Open connections shared between the accept loop (shutdown broadcast)
/// and the per-connection threads (self-removal on close).
struct ConnectionSet {
    std::mutex mutex;
    std::vector<int> fds;

    void add(int fd) {
        std::lock_guard<std::mutex> lock(mutex);
        fds.push_back(fd);
    }
    void remove(int fd) {
        std::lock_guard<std::mutex> lock(mutex);
        fds.erase(std::remove(fds.begin(), fds.end(), fd), fds.end());
    }
    void shutdown_all() {
        std::lock_guard<std::mutex> lock(mutex);
        // SHUT_RDWR unblocks any read()/write() in flight; the connection
        // threads then fall out of their loops and close their fds.
        for (int fd : fds) ::shutdown(fd, SHUT_RDWR);
    }
};

/// Per-connection threads with self-reported completion, so the accept loop
/// can reap finished threads as it goes. A long-lived daemon must not keep
/// one joinable std::thread per connection ever accepted: a finished but
/// unjoined thread retains its pthread resources (stack included) until the
/// join, which would grow the process without bound with connection count.
struct WorkerSet {
    std::mutex mutex;
    std::map<std::thread::id, std::thread> active;
    std::vector<std::thread::id> finished;

    void add(std::thread worker) {
        std::thread::id id = worker.get_id();
        std::lock_guard<std::mutex> lock(mutex);
        active.emplace(id, std::move(worker));
    }
    /// Called by a connection thread as its last act before returning.
    void mark_finished(std::thread::id id) {
        std::lock_guard<std::mutex> lock(mutex);
        finished.push_back(id);
    }
    /// Joins every thread that announced completion. Joining under the lock
    /// is safe: a finished thread never takes the lock again. An id not yet
    /// in `active` (its spawner lost the registration race) stays queued
    /// for the next pass.
    void reap() {
        std::lock_guard<std::mutex> lock(mutex);
        std::vector<std::thread::id> pending;
        for (std::thread::id id : finished) {
            auto it = active.find(id);
            if (it == active.end()) {
                pending.push_back(id);
                continue;
            }
            it->second.join();
            active.erase(it);
        }
        finished = std::move(pending);
    }
    /// Shutdown drain. Threads may still be running, so they are joined
    /// OUTSIDE the lock — a running thread needs it for mark_finished.
    void join_all() {
        std::map<std::thread::id, std::thread> taken;
        {
            std::lock_guard<std::mutex> lock(mutex);
            taken.swap(active);
            finished.clear();
        }
        for (auto& [id, worker] : taken) worker.join();
    }
};

struct ServerState {
    const core::Analyzer* analyzer = nullptr;
    const core::AnalyzerOptions* analyzer_options = nullptr;
    ReportCache* cache = nullptr;
    int wake_fd = -1;  // shutdown-request path (same pipe as the signals)

    // --- observability (PR 10) ---
    obs::RequestTelemetry* telemetry = nullptr;
    obs::Journal* journal = nullptr;  // nullable: --journal not given
    double slow_ms = -1;              // negative = slow logging disabled
    std::chrono::steady_clock::time_point started{};
    /// Registry baseline at daemon start; the metrics op reports
    /// delta_since(base) so counters reflect the requests served, not
    /// whatever ran in the process before serve().
    obs::MetricsSnapshot base;
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> next_connection_id{0};
    obs::Gauge* connections_active = nullptr;
    obs::Gauge* requests_inflight = nullptr;
};

/// The status op's document (see server.hpp). Volatile fields — pid,
/// uptime, ids, latency measurements — are what the determinism test
/// normalizes; everything else is a function of the requests served.
text::Json status_json(ServerState& state) {
    text::Json doc = text::Json::object();
    doc.set("analyzer", text::Json(std::string(core::kAnalyzerVersion)));
    doc.set("pid", text::Json(static_cast<std::int64_t>(::getpid())));
    double uptime = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                  state.started)
                        .count();
    doc.set("uptime_seconds", text::Json(uptime));

    text::Json requests = text::Json::object();
    requests.set("served",
                 text::Json(static_cast<std::int64_t>(state.telemetry->served())));
    requests.set("errors",
                 text::Json(static_cast<std::int64_t>(state.telemetry->errors())));
    // The request asking is itself still in flight, so this is >= 1.
    requests.set("inflight", text::Json(state.requests_inflight->value()));
    text::Json ops = text::Json::object();
    for (const auto& [op, count] : state.telemetry->op_tally()) {
        ops.set(op, text::Json(static_cast<std::int64_t>(count)));
    }
    requests.set("ops", std::move(ops));
    doc.set("requests", std::move(requests));

    text::Json connections = text::Json::object();
    connections.set("active", text::Json(state.connections_active->value()));
    connections.set("accepted",
                    text::Json(static_cast<std::int64_t>(
                        state.connections_accepted.load(std::memory_order_relaxed))));
    doc.set("connections", std::move(connections));

    text::Json latency = text::Json::object();
    latency.set("window_seconds", text::Json(state.telemetry->window_seconds()));
    latency.set("lifetime",
                obs::histogram_stats_json(state.telemetry->latency_lifetime_ms()));
    latency.set("window",
                obs::histogram_stats_json(state.telemetry->latency_window_ms()));
    doc.set("latency_ms", std::move(latency));

    if (state.cache != nullptr) {
        text::Json cache = state.cache->stats_json();
        cache.set("window_hits",
                  text::Json(static_cast<std::int64_t>(
                      state.telemetry->window_cache_hits())));
        cache.set("window_misses",
                  text::Json(static_cast<std::int64_t>(
                      state.telemetry->window_cache_misses())));
        doc.set("cache", std::move(cache));
    } else {
        doc.set("cache", text::Json());
    }
    return doc;
}

text::Json error_response(const text::Json* id, const std::string& message) {
    text::Json response = text::Json::object();
    if (id != nullptr) response.set("id", *id);
    response.set("ok", text::Json(false));
    response.set("error", text::Json(message));
    return response;
}

/// Handles one request line; returns the response document, sets `shutdown`
/// when the daemon should stop after responding, and fills the telemetry
/// skeleton of `record` (op, file, key, cached, phases). The caller derives
/// outcome/error/wall/bytes from the response it is about to write, so the
/// error paths here stay single-line.
text::Json handle_request(ServerState& state, const std::string& line,
                          bool& shutdown, obs::RequestRecord& record) {
    Result<text::Json> parsed = text::parse_json(line);
    if (!parsed.ok()) {
        return error_response(nullptr, "bad request: " + parsed.error().message);
    }
    const text::Json& request = parsed.value();
    if (!request.is_object()) return error_response(nullptr, "bad request: not an object");
    const text::Json* id = request.find("id");

    if (const text::Json* op = request.find("op")) {
        if (!op->is_string()) return error_response(id, "bad request: 'op' must be a string");
        const std::string& name = op->as_string();
        text::Json response = text::Json::object();
        if (id != nullptr) response.set("id", *id);
        if (name == "ping") {
            record.op = "ping";
            response.set("ok", text::Json(true));
            response.set("pong", text::Json(true));
            // Echo identity so a client can assert which daemon (and which
            // analyzer vintage) answered before trusting cached reports.
            response.set("version", text::Json(std::string(core::kAnalyzerVersion)));
            response.set("pid", text::Json(static_cast<std::int64_t>(::getpid())));
            response.set("cache", state.cache != nullptr ? state.cache->stats_json()
                                                         : text::Json());
            return response;
        }
        if (name == "status") {
            record.op = "status";
            response.set("ok", text::Json(true));
            response.set("status", status_json(state));
            return response;
        }
        if (name == "metrics") {
            record.op = "metrics";
            std::string format = "prometheus";
            if (const text::Json* f = request.find("format")) {
                if (!f->is_string()) {
                    return error_response(id, "bad request: 'format' must be a string");
                }
                format = f->as_string();
            }
            if (format != "prometheus" && format != "json") {
                return error_response(
                    id, "bad request: unknown metrics format '" + format + "'");
            }
            obs::MetricsSnapshot delta =
                obs::MetricsRegistry::global().snapshot().delta_since(state.base);
            response.set("ok", text::Json(true));
            response.set("format", text::Json(format));
            if (format == "prometheus") {
                response.set("metrics", text::Json(delta.to_prometheus()));
            } else {
                response.set("metrics", delta.to_json());
            }
            return response;
        }
        if (name == "health") {
            record.op = "health";
            response.set("ok", text::Json(true));
            response.set("healthy", text::Json(true));
            return response;
        }
        if (name == "shutdown") {
            record.op = "shutdown";
            shutdown = true;
            response.set("ok", text::Json(true));
            response.set("shutdown", text::Json(true));
            return response;
        }
        // Unknown ops stay op="invalid" in telemetry: the tally and journal
        // must not grow one bucket per misspelling a client invents.
        return error_response(id, "bad request: unknown op '" + name + "'");
    }

    std::string label;
    std::string text;
    if (const text::Json* file = request.find("file")) {
        if (!file->is_string()) return error_response(id, "bad request: 'file' must be a string");
        record.op = "file";
        label = file->as_string();
        record.file = label;
        std::ifstream in(label, std::ios::binary);
        if (!in) return error_response(id, "cannot open " + label);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        text = buffer.str();
    } else if (const text::Json* xapk = request.find("xapk")) {
        if (!xapk->is_string()) return error_response(id, "bad request: 'xapk' must be a string");
        record.op = "xapk";
        label = "<inline>";
        record.file = label;
        text = xapk->as_string();
    } else {
        return error_response(id, "bad request: expected 'file', 'xapk', or 'op'");
    }

    std::vector<core::BatchInput> inputs(1);
    inputs[0].file = label;
    inputs[0].text = std::move(text);
    CachedBatch batch =
        analyze_batch_cached(*state.analyzer, state.cache, std::move(inputs));
    const core::BatchItem& item = batch.items[0];
    record.key = batch.keys[0];
    record.cached = batch.hits > 0;
    obs::AppRunRecord app = core::telemetry_record(item, *state.analyzer_options);
    record.phase_seconds = std::move(app.phase_seconds);
    record.peak_bytes = app.peak_bytes;

    text::Json response = text::Json::object();
    if (id != nullptr) response.set("id", *id);
    if (!item.ok()) {
        response.set("ok", text::Json(false));
        response.set("file", text::Json(item.file));
        response.set("error", text::Json(item.error));
        return response;
    }
    response.set("ok", text::Json(true));
    response.set("file", text::Json(item.file));
    response.set("cached", text::Json(batch.hits > 0));
    response.set("report", item.report->to_json());
    return response;
}

/// Renders "parse=1.2ms taint=3.4ms ..." for the slow-request log line.
std::string phase_breakdown(
    const std::vector<std::pair<std::string, double>>& phases) {
    std::string out;
    char buf[64];
    for (const auto& [name, seconds] : phases) {
        std::snprintf(buf, sizeof buf, "%s%s=%.3fms", out.empty() ? "" : " ",
                      name.c_str(), seconds * 1000.0);
        out += buf;
    }
    return out;
}

/// Runs one request end to end: telemetry id, timing, trace span, journal
/// line, slow log. Returns the serialized response (newline included).
std::string run_request(ServerState& state, std::uint64_t connection_id,
                        const std::string& line, bool& shutdown) {
    obs::RequestRecord record;
    record.request_id = state.telemetry->next_request_id();
    record.connection_id = connection_id;
    record.op = "invalid";
    state.requests_inflight->add(1);
    auto start = std::chrono::steady_clock::now();
    text::Json response = handle_request(state, line, shutdown, record);
    auto end = std::chrono::steady_clock::now();
    std::string payload = response.dump();
    payload += '\n';  // compact dump has no raw newlines: one response = one line

    record.wall_seconds = std::chrono::duration<double>(end - start).count();
    record.response_bytes = payload.size();
    const text::Json* ok = response.find("ok");
    record.outcome = (ok != nullptr && ok->is_bool() && ok->as_bool()) ? "ok" : "error";
    if (const text::Json* error = response.find("error");
        error != nullptr && error->is_string()) {
        record.error = error->as_string();
    }

    obs::TraceRecorder& tracer = obs::TraceRecorder::global();
    if (tracer.enabled()) {
        obs::TraceEvent event;
        event.name = "request." + record.op;  // bounded name set: ops, not ids
        event.category = "daemon";
        event.start_us = tracer.to_us(start);
        event.duration_us = tracer.to_us(end) - event.start_us;
        event.thread = tracer.thread_number();
        tracer.record(std::move(event));
    }
    state.telemetry->record(record);
    if (state.journal != nullptr) state.journal->append(record.to_json());
    double ms = record.wall_seconds * 1000.0;
    if (state.slow_ms >= 0 && ms >= state.slow_ms) {
        log::warn()
                .kv("request", record.request_id)
                .kv("connection", record.connection_id)
                .kv("op", record.op)
                .kv("ms", ms)
                .kv("cached", record.cached ? "true" : "false")
                .kv("phases", phase_breakdown(record.phase_seconds))
            << "daemon: slow request";
    }
    state.requests_inflight->add(-1);
    return payload;
}

void serve_connection(ServerState& state, ConnectionSet& connections, int fd) {
    std::uint64_t connection_id =
        state.next_connection_id.fetch_add(1, std::memory_order_relaxed) + 1;
    state.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    state.connections_active->add(1);
    obs::TraceRecorder& tracer = obs::TraceRecorder::global();
    if (tracer.enabled()) {
        // One labeled Perfetto row per connection, so request spans carry
        // their connection attribution without per-span payloads.
        tracer.name_current_thread("conn-" + std::to_string(connection_id));
    }
    std::string buffer;
    char chunk[4096];
    bool shutdown = false;
    bool dead = false;
    for (;;) {
        ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (n == 0) break;  // client closed (or shutdown_all unblocked us)
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t newline = 0;
        while ((newline = buffer.find('\n')) != std::string::npos) {
            std::string line = buffer.substr(0, newline);
            buffer.erase(0, newline + 1);
            if (line.empty()) continue;
            std::string payload = run_request(state, connection_id, line, shutdown);
            bool sent = write_all(fd, payload);
            if (shutdown) {
                char byte = 'x';
                [[maybe_unused]] ssize_t w = ::write(state.wake_fd, &byte, 1);
            }
            if (!sent || shutdown) {
                dead = true;
                break;
            }
        }
        // A "line" past 64 MiB with no newline is not a protocol client.
        if (dead || buffer.size() > (64u << 20)) break;
    }
    state.connections_active->add(-1);
    connections.remove(fd);
    ::close(fd);
}

}  // namespace

int serve(const ServeOptions& options) {
    const std::string& path = options.socket_path;
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "error: socket path too long: %s\n", path.c_str());
        return 1;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    // A leftover socket file from a crashed daemon would make bind() fail.
    // Probe it: a live daemon accepts the connect (refuse to double-bind);
    // a dead one refuses, and the stale file is unlinked.
    if (std::filesystem::exists(path)) {
        int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (probe >= 0) {
            int rc = ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
            ::close(probe);
            if (rc == 0) {
                std::fprintf(stderr, "error: %s already has a live daemon\n",
                             path.c_str());
                return 1;
            }
        }
        ::unlink(path.c_str());
    }

    int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0) {
        std::fprintf(stderr, "error: socket: %s\n", std::strerror(errno));
        return 1;
    }
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(listen_fd, 16) != 0) {
        std::fprintf(stderr, "error: cannot listen on %s: %s\n", path.c_str(),
                     std::strerror(errno));
        ::close(listen_fd);
        return 1;
    }

    int wake[2] = {-1, -1};
    if (::pipe(wake) != 0) {
        std::fprintf(stderr, "error: pipe: %s\n", std::strerror(errno));
        ::close(listen_fd);
        ::unlink(path.c_str());
        return 1;
    }
    g_wake_fd = wake[1];

    struct sigaction wake_action{};
    wake_action.sa_handler = wake_on_signal;
    sigemptyset(&wake_action.sa_mask);
    struct sigaction old_term{}, old_int{}, old_pipe{};
    struct sigaction ignore_action{};
    ignore_action.sa_handler = SIG_IGN;
    sigemptyset(&ignore_action.sa_mask);
    ::sigaction(SIGTERM, &wake_action, &old_term);
    ::sigaction(SIGINT, &wake_action, &old_int);
    // A client vanishing mid-response must not kill the daemon.
    ::sigaction(SIGPIPE, &ignore_action, &old_pipe);

    // Built once, shared by every request: the warm semantic model and
    // interned strings are the daemon's whole point. No progress callback —
    // the daemon's stderr is a log, not a terminal.
    core::AnalyzerOptions analyzer_options = options.analyzer;
    analyzer_options.batch_progress = nullptr;
    core::Analyzer analyzer(analyzer_options);
    std::unique_ptr<ReportCache> cache;
    if (options.cache) cache = std::make_unique<ReportCache>(*options.cache);
    obs::RequestTelemetry telemetry;
    std::unique_ptr<obs::Journal> journal;
    if (!options.journal_path.empty()) {
        obs::JournalOptions journal_options;
        journal_options.path = options.journal_path;
        journal_options.max_bytes = options.journal_max_bytes;
        journal = std::make_unique<obs::Journal>(std::move(journal_options));
    }

    ServerState state;
    state.analyzer = &analyzer;
    state.analyzer_options = &analyzer_options;
    state.cache = cache.get();
    state.wake_fd = wake[1];
    state.telemetry = &telemetry;
    state.journal = journal.get();
    state.slow_ms = options.slow_ms;
    state.started = std::chrono::steady_clock::now();
    state.connections_active = &obs::gauge("daemon.connections.active");
    state.requests_inflight = &obs::gauge("daemon.requests.inflight");
    // Baseline AFTER analyzer/cache construction: their setup counters are
    // not request work, and the metrics op must report only the latter.
    state.base = obs::MetricsRegistry::global().snapshot();

    ConnectionSet connections;
    WorkerSet workers;

    log::info().kv("socket", path).kv("jobs", analyzer_options.jobs)
        << "cache: daemon listening";

    for (;;) {
        // Reclaim finished connection threads before (possibly) blocking in
        // poll, so idle periods don't pin completed threads either.
        workers.reap();
        pollfd fds[2] = {{wake[0], POLLIN, 0}, {listen_fd, POLLIN, 0}};
        int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (fds[0].revents != 0) break;  // signal or shutdown request
        if ((fds[1].revents & POLLIN) == 0) continue;
        int conn = ::accept(listen_fd, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR) continue;
            break;
        }
        connections.add(conn);
        workers.add(std::thread([&state, &connections, &workers, conn] {
            serve_connection(state, connections, conn);
            workers.mark_finished(std::this_thread::get_id());
        }));
    }

    // Clean shutdown: stop accepting, unblock in-flight connections, drain.
    ::close(listen_fd);
    ::unlink(path.c_str());
    connections.shutdown_all();
    workers.join_all();
    ::sigaction(SIGTERM, &old_term, nullptr);
    ::sigaction(SIGINT, &old_int, nullptr);
    ::sigaction(SIGPIPE, &old_pipe, nullptr);
    g_wake_fd = -1;
    ::close(wake[0]);
    ::close(wake[1]);
    if (cache) {
        CacheStats s = cache->stats();
        log::info()
                .kv("requests", telemetry.served())
                .kv("errors", telemetry.errors())
                .kv("hits", s.hits)
                .kv("misses", s.misses)
                .kv("corrupt_entries", s.corrupt_entries)
            << "cache: daemon stopped";
    } else {
        log::info().kv("requests", telemetry.served()).kv("errors", telemetry.errors())
            << "cache: daemon stopped";
    }
    return 0;
}

namespace {

/// Connects to a daemon socket, retrying until the timeout: tests (and
/// scripts) start daemon + client back to back, and the daemon needs a
/// moment to bind. Returns the fd, or -1 with the error already printed.
int connect_with_retry(const std::string& socket_path, double timeout_seconds) {
    sockaddr_un addr{};
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "error: socket path too long: %s\n", socket_path.c_str());
        return -1;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        std::fprintf(stderr, "error: socket: %s\n", std::strerror(errno));
        return -1;
    }
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration<double>(timeout_seconds);
    while (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        if (std::chrono::steady_clock::now() >= deadline) {
            std::fprintf(stderr, "error: cannot connect to %s: %s\n",
                         socket_path.c_str(), std::strerror(errno));
            ::close(fd);
            return -1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return fd;
}

/// Reads one newline-terminated response into `line` (carrying partial data
/// across calls in `buffer`). Returns false with the error printed when the
/// daemon closes first.
bool read_response_line(int fd, std::string& buffer, std::string& line) {
    char chunk[4096];
    std::size_t newline = 0;
    while ((newline = buffer.find('\n')) == std::string::npos) {
        ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) {
            std::fprintf(stderr, "error: daemon closed the connection\n");
            return false;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
    line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    return true;
}

}  // namespace

int connect_and_analyze(const std::string& socket_path,
                        const std::vector<std::string>& files,
                        double connect_timeout_seconds) {
    int fd = connect_with_retry(socket_path, connect_timeout_seconds);
    if (fd < 0) return 1;

    int exit_code = 0;
    std::string buffer;
    for (std::size_t i = 0; i < files.size(); ++i) {
        // Absolute paths: the daemon resolves them from its own cwd.
        std::error_code ec;
        std::filesystem::path absolute = std::filesystem::absolute(files[i], ec);
        text::Json request = text::Json::object();
        request.set("id", text::Json(static_cast<std::int64_t>(i + 1)));
        request.set("file", text::Json(ec ? files[i] : absolute.string()));
        if (!write_all(fd, request.dump() + "\n")) {
            std::fprintf(stderr, "error: daemon connection lost\n");
            ::close(fd);
            return 1;
        }
        std::string line;
        if (!read_response_line(fd, buffer, line)) {
            ::close(fd);
            return 1;
        }
        std::printf("%s\n", line.c_str());
        Result<text::Json> response = text::parse_json(line);
        const text::Json* ok =
            response.ok() && response.value().is_object() ? response.value().find("ok")
                                                          : nullptr;
        if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) exit_code = 1;
    }
    ::close(fd);
    return exit_code;
}

int connect_admin(const std::string& socket_path, const std::string& op,
                  double connect_timeout_seconds) {
    int fd = connect_with_retry(socket_path, connect_timeout_seconds);
    if (fd < 0) return 1;

    text::Json request = text::Json::object();
    request.set("op", text::Json(op));
    // The admin client's metrics view is the scrape format; the JSON form
    // stays reachable through the raw protocol.
    if (op == "metrics") request.set("format", text::Json("prometheus"));
    if (!write_all(fd, request.dump() + "\n")) {
        std::fprintf(stderr, "error: daemon connection lost\n");
        ::close(fd);
        return 1;
    }
    std::string buffer;
    std::string line;
    if (!read_response_line(fd, buffer, line)) {
        ::close(fd);
        return 1;
    }
    ::close(fd);

    Result<text::Json> parsed = text::parse_json(line);
    if (!parsed.ok() || !parsed.value().is_object()) {
        std::fprintf(stderr, "error: bad daemon response: %s\n", line.c_str());
        return 1;
    }
    const text::Json& response = parsed.value();
    const text::Json* ok = response.find("ok");
    if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
        const text::Json* error = response.find("error");
        std::fprintf(stderr, "error: %s\n",
                     error != nullptr && error->is_string() ? error->as_string().c_str()
                                                            : line.c_str());
        return 1;
    }
    if (op == "status") {
        const text::Json* status = response.find("status");
        if (status == nullptr) {
            std::fprintf(stderr, "error: response carries no status: %s\n", line.c_str());
            return 1;
        }
        std::printf("%s\n", status->dump_pretty().c_str());
        return 0;
    }
    const text::Json* metrics = response.find("metrics");
    if (metrics == nullptr || !metrics->is_string()) {
        std::fprintf(stderr, "error: response carries no metrics text: %s\n",
                     line.c_str());
        return 1;
    }
    // The exposition text already ends each sample with '\n'.
    std::fputs(metrics->as_string().c_str(), stdout);
    return 0;
}

}  // namespace extractocol::cache
