#include "cache/server.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "support/log.hpp"
#include "text/json.hpp"

namespace extractocol::cache {

namespace {

// Self-pipe write end for the signal handlers. write() is async-signal-safe;
// the accept loop polls the read end. Set before handlers are installed.
int g_wake_fd = -1;

void wake_on_signal(int) {
    char byte = 'x';
    [[maybe_unused]] ssize_t n = ::write(g_wake_fd, &byte, 1);
}

bool write_all(int fd, std::string_view data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
        ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/// Open connections shared between the accept loop (shutdown broadcast)
/// and the per-connection threads (self-removal on close).
struct ConnectionSet {
    std::mutex mutex;
    std::vector<int> fds;

    void add(int fd) {
        std::lock_guard<std::mutex> lock(mutex);
        fds.push_back(fd);
    }
    void remove(int fd) {
        std::lock_guard<std::mutex> lock(mutex);
        fds.erase(std::remove(fds.begin(), fds.end(), fd), fds.end());
    }
    void shutdown_all() {
        std::lock_guard<std::mutex> lock(mutex);
        // SHUT_RDWR unblocks any read()/write() in flight; the connection
        // threads then fall out of their loops and close their fds.
        for (int fd : fds) ::shutdown(fd, SHUT_RDWR);
    }
};

/// Per-connection threads with self-reported completion, so the accept loop
/// can reap finished threads as it goes. A long-lived daemon must not keep
/// one joinable std::thread per connection ever accepted: a finished but
/// unjoined thread retains its pthread resources (stack included) until the
/// join, which would grow the process without bound with connection count.
struct WorkerSet {
    std::mutex mutex;
    std::map<std::thread::id, std::thread> active;
    std::vector<std::thread::id> finished;

    void add(std::thread worker) {
        std::thread::id id = worker.get_id();
        std::lock_guard<std::mutex> lock(mutex);
        active.emplace(id, std::move(worker));
    }
    /// Called by a connection thread as its last act before returning.
    void mark_finished(std::thread::id id) {
        std::lock_guard<std::mutex> lock(mutex);
        finished.push_back(id);
    }
    /// Joins every thread that announced completion. Joining under the lock
    /// is safe: a finished thread never takes the lock again. An id not yet
    /// in `active` (its spawner lost the registration race) stays queued
    /// for the next pass.
    void reap() {
        std::lock_guard<std::mutex> lock(mutex);
        std::vector<std::thread::id> pending;
        for (std::thread::id id : finished) {
            auto it = active.find(id);
            if (it == active.end()) {
                pending.push_back(id);
                continue;
            }
            it->second.join();
            active.erase(it);
        }
        finished = std::move(pending);
    }
    /// Shutdown drain. Threads may still be running, so they are joined
    /// OUTSIDE the lock — a running thread needs it for mark_finished.
    void join_all() {
        std::map<std::thread::id, std::thread> taken;
        {
            std::lock_guard<std::mutex> lock(mutex);
            taken.swap(active);
            finished.clear();
        }
        for (auto& [id, worker] : taken) worker.join();
    }
};

struct ServerState {
    const core::Analyzer* analyzer = nullptr;
    ReportCache* cache = nullptr;
    int wake_fd = -1;  // shutdown-request path (same pipe as the signals)
};

text::Json error_response(const text::Json* id, const std::string& message) {
    text::Json response = text::Json::object();
    if (id != nullptr) response.set("id", *id);
    response.set("ok", text::Json(false));
    response.set("error", text::Json(message));
    return response;
}

/// Handles one request line; returns the response document and sets
/// `shutdown` when the daemon should stop after responding.
text::Json handle_request(ServerState& state, const std::string& line,
                          bool& shutdown) {
    Result<text::Json> parsed = text::parse_json(line);
    if (!parsed.ok()) {
        return error_response(nullptr, "bad request: " + parsed.error().message);
    }
    const text::Json& request = parsed.value();
    if (!request.is_object()) return error_response(nullptr, "bad request: not an object");
    const text::Json* id = request.find("id");

    if (const text::Json* op = request.find("op")) {
        if (!op->is_string()) return error_response(id, "bad request: 'op' must be a string");
        if (op->as_string() == "ping") {
            text::Json response = text::Json::object();
            if (id != nullptr) response.set("id", *id);
            response.set("ok", text::Json(true));
            response.set("pong", text::Json(true));
            response.set("cache", state.cache != nullptr ? state.cache->stats_json()
                                                         : text::Json());
            return response;
        }
        if (op->as_string() == "shutdown") {
            shutdown = true;
            text::Json response = text::Json::object();
            if (id != nullptr) response.set("id", *id);
            response.set("ok", text::Json(true));
            response.set("shutdown", text::Json(true));
            return response;
        }
        return error_response(id, "bad request: unknown op '" + op->as_string() + "'");
    }

    std::string label;
    std::string text;
    if (const text::Json* file = request.find("file")) {
        if (!file->is_string()) return error_response(id, "bad request: 'file' must be a string");
        label = file->as_string();
        std::ifstream in(label, std::ios::binary);
        if (!in) return error_response(id, "cannot open " + label);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        text = buffer.str();
    } else if (const text::Json* xapk = request.find("xapk")) {
        if (!xapk->is_string()) return error_response(id, "bad request: 'xapk' must be a string");
        label = "<inline>";
        text = xapk->as_string();
    } else {
        return error_response(id, "bad request: expected 'file', 'xapk', or 'op'");
    }

    std::vector<core::BatchInput> inputs(1);
    inputs[0].file = label;
    inputs[0].text = std::move(text);
    CachedBatch batch =
        analyze_batch_cached(*state.analyzer, state.cache, std::move(inputs));
    const core::BatchItem& item = batch.items[0];

    text::Json response = text::Json::object();
    if (id != nullptr) response.set("id", *id);
    if (!item.ok()) {
        response.set("ok", text::Json(false));
        response.set("file", text::Json(item.file));
        response.set("error", text::Json(item.error));
        return response;
    }
    response.set("ok", text::Json(true));
    response.set("file", text::Json(item.file));
    response.set("cached", text::Json(batch.hits > 0));
    response.set("report", item.report->to_json());
    return response;
}

void serve_connection(ServerState& state, ConnectionSet& connections, int fd) {
    std::string buffer;
    char chunk[4096];
    bool shutdown = false;
    bool dead = false;
    for (;;) {
        ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (n == 0) break;  // client closed (or shutdown_all unblocked us)
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t newline = 0;
        while ((newline = buffer.find('\n')) != std::string::npos) {
            std::string line = buffer.substr(0, newline);
            buffer.erase(0, newline + 1);
            if (line.empty()) continue;
            text::Json response = handle_request(state, line, shutdown);
            // Compact dump has no raw newlines, so one response = one line.
            bool sent = write_all(fd, response.dump() + "\n");
            if (shutdown) {
                char byte = 'x';
                [[maybe_unused]] ssize_t w = ::write(state.wake_fd, &byte, 1);
            }
            if (!sent || shutdown) {
                dead = true;
                break;
            }
        }
        // A "line" past 64 MiB with no newline is not a protocol client.
        if (dead || buffer.size() > (64u << 20)) break;
    }
    connections.remove(fd);
    ::close(fd);
}

}  // namespace

int serve(const ServeOptions& options) {
    const std::string& path = options.socket_path;
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "error: socket path too long: %s\n", path.c_str());
        return 1;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    // A leftover socket file from a crashed daemon would make bind() fail.
    // Probe it: a live daemon accepts the connect (refuse to double-bind);
    // a dead one refuses, and the stale file is unlinked.
    if (std::filesystem::exists(path)) {
        int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (probe >= 0) {
            int rc = ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
            ::close(probe);
            if (rc == 0) {
                std::fprintf(stderr, "error: %s already has a live daemon\n",
                             path.c_str());
                return 1;
            }
        }
        ::unlink(path.c_str());
    }

    int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0) {
        std::fprintf(stderr, "error: socket: %s\n", std::strerror(errno));
        return 1;
    }
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(listen_fd, 16) != 0) {
        std::fprintf(stderr, "error: cannot listen on %s: %s\n", path.c_str(),
                     std::strerror(errno));
        ::close(listen_fd);
        return 1;
    }

    int wake[2] = {-1, -1};
    if (::pipe(wake) != 0) {
        std::fprintf(stderr, "error: pipe: %s\n", std::strerror(errno));
        ::close(listen_fd);
        ::unlink(path.c_str());
        return 1;
    }
    g_wake_fd = wake[1];

    struct sigaction wake_action{};
    wake_action.sa_handler = wake_on_signal;
    sigemptyset(&wake_action.sa_mask);
    struct sigaction old_term{}, old_int{}, old_pipe{};
    struct sigaction ignore_action{};
    ignore_action.sa_handler = SIG_IGN;
    sigemptyset(&ignore_action.sa_mask);
    ::sigaction(SIGTERM, &wake_action, &old_term);
    ::sigaction(SIGINT, &wake_action, &old_int);
    // A client vanishing mid-response must not kill the daemon.
    ::sigaction(SIGPIPE, &ignore_action, &old_pipe);

    // Built once, shared by every request: the warm semantic model and
    // interned strings are the daemon's whole point. No progress callback —
    // the daemon's stderr is a log, not a terminal.
    core::AnalyzerOptions analyzer_options = options.analyzer;
    analyzer_options.batch_progress = nullptr;
    core::Analyzer analyzer(analyzer_options);
    std::unique_ptr<ReportCache> cache;
    if (options.cache) cache = std::make_unique<ReportCache>(*options.cache);

    ServerState state;
    state.analyzer = &analyzer;
    state.cache = cache.get();
    state.wake_fd = wake[1];

    ConnectionSet connections;
    WorkerSet workers;

    log::info().kv("socket", path).kv("jobs", analyzer_options.jobs)
        << "cache: daemon listening";

    for (;;) {
        // Reclaim finished connection threads before (possibly) blocking in
        // poll, so idle periods don't pin completed threads either.
        workers.reap();
        pollfd fds[2] = {{wake[0], POLLIN, 0}, {listen_fd, POLLIN, 0}};
        int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (fds[0].revents != 0) break;  // signal or shutdown request
        if ((fds[1].revents & POLLIN) == 0) continue;
        int conn = ::accept(listen_fd, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR) continue;
            break;
        }
        connections.add(conn);
        workers.add(std::thread([&state, &connections, &workers, conn] {
            serve_connection(state, connections, conn);
            workers.mark_finished(std::this_thread::get_id());
        }));
    }

    // Clean shutdown: stop accepting, unblock in-flight connections, drain.
    ::close(listen_fd);
    ::unlink(path.c_str());
    connections.shutdown_all();
    workers.join_all();
    ::sigaction(SIGTERM, &old_term, nullptr);
    ::sigaction(SIGINT, &old_int, nullptr);
    ::sigaction(SIGPIPE, &old_pipe, nullptr);
    g_wake_fd = -1;
    ::close(wake[0]);
    ::close(wake[1]);
    if (cache) {
        CacheStats s = cache->stats();
        log::info()
                .kv("hits", s.hits)
                .kv("misses", s.misses)
                .kv("corrupt_entries", s.corrupt_entries)
            << "cache: daemon stopped";
    } else {
        log::info() << "cache: daemon stopped";
    }
    return 0;
}

int connect_and_analyze(const std::string& socket_path,
                        const std::vector<std::string>& files,
                        double connect_timeout_seconds) {
    sockaddr_un addr{};
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "error: socket path too long: %s\n", socket_path.c_str());
        return 1;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        std::fprintf(stderr, "error: socket: %s\n", std::strerror(errno));
        return 1;
    }
    // Retry the connect: tests (and scripts) start daemon + client back to
    // back, and the daemon needs a moment to bind.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration<double>(connect_timeout_seconds);
    while (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        if (std::chrono::steady_clock::now() >= deadline) {
            std::fprintf(stderr, "error: cannot connect to %s: %s\n",
                         socket_path.c_str(), std::strerror(errno));
            ::close(fd);
            return 1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    int exit_code = 0;
    std::string buffer;
    char chunk[4096];
    for (std::size_t i = 0; i < files.size(); ++i) {
        // Absolute paths: the daemon resolves them from its own cwd.
        std::error_code ec;
        std::filesystem::path absolute = std::filesystem::absolute(files[i], ec);
        text::Json request = text::Json::object();
        request.set("id", text::Json(static_cast<std::int64_t>(i + 1)));
        request.set("file", text::Json(ec ? files[i] : absolute.string()));
        if (!write_all(fd, request.dump() + "\n")) {
            std::fprintf(stderr, "error: daemon connection lost\n");
            ::close(fd);
            return 1;
        }
        std::size_t newline = 0;
        while ((newline = buffer.find('\n')) == std::string::npos) {
            ssize_t n = ::read(fd, chunk, sizeof chunk);
            if (n < 0 && errno == EINTR) continue;
            if (n <= 0) {
                std::fprintf(stderr, "error: daemon closed the connection\n");
                ::close(fd);
                return 1;
            }
            buffer.append(chunk, static_cast<std::size_t>(n));
        }
        std::string line = buffer.substr(0, newline);
        buffer.erase(0, newline + 1);
        std::printf("%s\n", line.c_str());
        Result<text::Json> response = text::parse_json(line);
        const text::Json* ok =
            response.ok() && response.value().is_object() ? response.value().find("ok")
                                                          : nullptr;
        if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) exit_code = 1;
    }
    ::close(fd);
    return exit_code;
}

}  // namespace extractocol::cache
