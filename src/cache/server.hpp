// Layer 2 of fleet-scale re-analysis: `extractocol --serve <socket>`, a
// long-lived daemon over a Unix domain socket. One process keeps the
// semantic model, interned strings, and the report cache warm; clients send
// newline-delimited JSON requests and get one JSON response line each:
//
//   -> {"id": 1, "file": "/abs/path/app.xapk"}
//   -> {"id": 2, "xapk": "<serialized app text>"}
//   -> {"op": "ping"}
//   -> {"op": "shutdown"}
//   <- {"id": 1, "ok": true, "file": "...", "cached": true, "report": {...}}
//   <- {"ok": false, "error": "..."}
//
// Misses run through Analyzer::analyze_batch (the daemon's --jobs pool);
// hits replay the cache byte-identically. Each connection is served by its
// own thread, so concurrent clients racing on the same miss exercise the
// cache's atomic-rename last-writer-wins path. SIGTERM/SIGINT (or an
// {"op":"shutdown"} request) stop the accept loop via a self-pipe, drain
// open connections, and unlink the socket.
//
// Observability (PR 10): every request gets a monotonic id and becomes one
// obs::RequestRecord — op, cache key, hit/miss, outcome, wall + per-phase
// seconds, response bytes — folded into live telemetry (lifetime tallies
// plus sliding-window registry instruments under `daemon.*`), optionally
// appended to a JSONL access journal (--journal, size-rotated), and logged
// with a per-phase breakdown when slower than --slow-ms. The admin plane
// rides the same protocol:
//
//   -> {"op": "status"}                      <- {"ok":true,"status":{...}}
//   -> {"op": "metrics"}                     <- {"ok":true,"metrics":"<prom text>"}
//   -> {"op": "metrics", "format": "json"}   <- {"ok":true,"metrics":{...}}
//   -> {"op": "health"}                      <- {"ok":true,"healthy":true}
//
// The metrics op reports the registry delta since daemon start, so counter
// values are a function of the requests served, not of whatever ran in the
// process before serve(). When tracing is on, each request records a
// "request.<op>" trace span on its connection's thread ("conn-<n>").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "core/analyzer.hpp"

namespace extractocol::cache {

struct ServeOptions {
    std::string socket_path;
    core::AnalyzerOptions analyzer;
    /// Persistent cache to serve from; nullopt = every request analyzes.
    std::optional<CacheOptions> cache;
    /// Access journal: one JSONL record per request (empty = no journal).
    std::string journal_path;
    /// Journal rotation threshold (see obs::JournalOptions).
    std::uint64_t journal_max_bytes = 64ull << 20;
    /// Log a per-phase breakdown for requests slower than this many
    /// milliseconds (negative = disabled; 0 logs every request).
    double slow_ms = -1;
};

/// Runs the daemon until SIGTERM/SIGINT or a shutdown request; returns the
/// process exit code (0 on clean shutdown, 1 on setup failure).
[[nodiscard]] int serve(const ServeOptions& options);

/// Client mode (`--connect`): sends one analysis request per file to a
/// running daemon and prints each raw JSON response line to stdout.
/// Retries the initial connect until `connect_timeout_seconds` so a test
/// can launch daemon and client back to back. Returns 0 iff every response
/// was ok.
[[nodiscard]] int connect_and_analyze(const std::string& socket_path,
                                      const std::vector<std::string>& files,
                                      double connect_timeout_seconds = 10.0);

/// Admin client (`--connect <sock> --status` / `--metrics-live`): sends one
/// admin op to a running daemon and prints the result to stdout — "status"
/// pretty-prints the daemon's status document, "metrics" prints the live
/// Prometheus text exposition verbatim. Returns 0 iff the daemon answered
/// ok (the error is printed to stderr otherwise).
[[nodiscard]] int connect_admin(const std::string& socket_path, const std::string& op,
                                double connect_timeout_seconds = 10.0);

}  // namespace extractocol::cache
