// Layer 2 of fleet-scale re-analysis: `extractocol --serve <socket>`, a
// long-lived daemon over a Unix domain socket. One process keeps the
// semantic model, interned strings, and the report cache warm; clients send
// newline-delimited JSON requests and get one JSON response line each:
//
//   -> {"id": 1, "file": "/abs/path/app.xapk"}
//   -> {"id": 2, "xapk": "<serialized app text>"}
//   -> {"op": "ping"}
//   -> {"op": "shutdown"}
//   <- {"id": 1, "ok": true, "file": "...", "cached": true, "report": {...}}
//   <- {"ok": false, "error": "..."}
//
// Misses run through Analyzer::analyze_batch (the daemon's --jobs pool);
// hits replay the cache byte-identically. Each connection is served by its
// own thread, so concurrent clients racing on the same miss exercise the
// cache's atomic-rename last-writer-wins path. SIGTERM/SIGINT (or an
// {"op":"shutdown"} request) stop the accept loop via a self-pipe, drain
// open connections, and unlink the socket.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "core/analyzer.hpp"

namespace extractocol::cache {

struct ServeOptions {
    std::string socket_path;
    core::AnalyzerOptions analyzer;
    /// Persistent cache to serve from; nullopt = every request analyzes.
    std::optional<CacheOptions> cache;
};

/// Runs the daemon until SIGTERM/SIGINT or a shutdown request; returns the
/// process exit code (0 on clean shutdown, 1 on setup failure).
[[nodiscard]] int serve(const ServeOptions& options);

/// Client mode (`--connect`): sends one analysis request per file to a
/// running daemon and prints each raw JSON response line to stdout.
/// Retries the initial connect until `connect_timeout_seconds` so a test
/// can launch daemon and client back to back. Returns 0 iff every response
/// was ok.
[[nodiscard]] int connect_and_analyze(const std::string& socket_path,
                                      const std::vector<std::string>& files,
                                      double connect_timeout_seconds = 10.0);

}  // namespace extractocol::cache
