#include "cache/codec.hpp"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace extractocol::cache {

namespace {

using text::Json;

// ------------------------------------------------------------- encoding --

Json sig_to_json(const sig::Sig& s) {
    Json obj = Json::object();
    obj.set("k", Json(static_cast<int>(s.kind)));
    if (s.value_type != sig::Sig::ValueType::kAny) {
        obj.set("v", Json(static_cast<int>(s.value_type)));
    }
    if (!s.text.empty()) obj.set("t", Json(s.text));
    if (!s.children.empty()) {
        Json arr = Json::array();
        for (const sig::Sig& c : s.children) arr.push_back(sig_to_json(c));
        obj.set("ch", std::move(arr));
    }
    if (!s.members.empty()) {
        Json arr = Json::array();
        for (const auto& [key, value] : s.members) {
            Json pair = Json::array();
            pair.push_back(Json(key));
            pair.push_back(sig_to_json(value));
            arr.push_back(std::move(pair));
        }
        obj.set("mem", std::move(arr));
    }
    if (!s.xml_text.empty()) {
        Json arr = Json::array();
        for (const sig::Sig& c : s.xml_text) arr.push_back(sig_to_json(c));
        obj.set("xt", std::move(arr));
    }
    if (s.repeated) obj.set("rep", Json(true));
    if (s.reason != sig::UnknownReason::kUnspecified) {
        obj.set("rsn", Json(static_cast<int>(s.reason)));
    }
    if (!s.origin.empty()) obj.set("org", Json(s.origin));
    return obj;
}

Json string_array(const std::vector<std::string>& values) {
    Json arr = Json::array();
    for (const std::string& v : values) arr.push_back(Json(v));
    return arr;
}

Json stmt_ref_json(const xir::StmtRef& site) {
    Json arr = Json::array();
    arr.push_back(Json(static_cast<std::int64_t>(site.method_index)));
    arr.push_back(Json(static_cast<std::int64_t>(site.block)));
    arr.push_back(Json(static_cast<std::int64_t>(site.index)));
    return arr;
}

Json signature_to_json(const sig::TransactionSignature& s) {
    Json obj = Json::object();
    obj.set("m", Json(static_cast<int>(s.method)));
    obj.set("uri", sig_to_json(s.uri));
    Json headers = Json::array();
    for (const auto& [name, value] : s.headers) {
        Json pair = Json::array();
        pair.push_back(sig_to_json(name));
        pair.push_back(sig_to_json(value));
        headers.push_back(std::move(pair));
    }
    obj.set("hdr", std::move(headers));
    obj.set("hb", Json(s.has_body));
    obj.set("body", sig_to_json(s.body));
    obj.set("bk", Json(static_cast<int>(s.body_kind)));
    obj.set("hrb", Json(s.has_response_body));
    obj.set("rbody", sig_to_json(s.response_body));
    obj.set("rk", Json(static_cast<int>(s.response_kind)));
    obj.set("lib", Json(s.library));
    obj.set("cons", Json(static_cast<int>(s.consumer)));
    obj.set("res", string_array(s.resource_refs));
    return obj;
}

Json name_count_array(const std::vector<std::pair<std::string, std::size_t>>& rows) {
    Json arr = Json::array();
    for (const auto& [name, count] : rows) {
        Json pair = Json::array();
        pair.push_back(Json(name));
        pair.push_back(Json(static_cast<std::int64_t>(count)));
        arr.push_back(std::move(pair));
    }
    return arr;
}

Json name_u64_array(const std::vector<std::pair<std::string, std::uint64_t>>& rows) {
    Json arr = Json::array();
    for (const auto& [name, count] : rows) {
        Json pair = Json::array();
        pair.push_back(Json(name));
        pair.push_back(Json(static_cast<std::int64_t>(count)));
        arr.push_back(std::move(pair));
    }
    return arr;
}

// ------------------------------------------------------------- decoding --

/// First-error accumulator: decode helpers return false and record the
/// outermost failure, so the cache layer gets one actionable message.
struct Dec {
    std::string err;

    bool fail(std::string message) {
        if (err.empty()) err = std::move(message);
        return false;
    }
};

bool get_i64(const Json& obj, const char* key, std::int64_t& out, Dec& dec) {
    const Json* j = obj.find(key);
    if (j == nullptr || !j->is_int()) return dec.fail(std::string("missing int field '") + key + "'");
    out = j->as_int();
    return true;
}

bool get_size(const Json& obj, const char* key, std::size_t& out, Dec& dec) {
    std::int64_t v = 0;
    if (!get_i64(obj, key, v, dec)) return false;
    if (v < 0) return dec.fail(std::string("negative field '") + key + "'");
    out = static_cast<std::size_t>(v);
    return true;
}

bool get_u64(const Json& obj, const char* key, std::uint64_t& out, Dec& dec) {
    std::int64_t v = 0;
    if (!get_i64(obj, key, v, dec)) return false;
    if (v < 0) return dec.fail(std::string("negative field '") + key + "'");
    out = static_cast<std::uint64_t>(v);
    return true;
}

bool get_bool(const Json& obj, const char* key, bool& out, Dec& dec) {
    const Json* j = obj.find(key);
    if (j == nullptr || !j->is_bool()) return dec.fail(std::string("missing bool field '") + key + "'");
    out = j->as_bool();
    return true;
}

bool get_str(const Json& obj, const char* key, std::string& out, Dec& dec) {
    const Json* j = obj.find(key);
    if (j == nullptr || !j->is_string()) {
        return dec.fail(std::string("missing string field '") + key + "'");
    }
    out = j->as_string();
    return true;
}

bool get_double(const Json& obj, const char* key, double& out, Dec& dec) {
    const Json* j = obj.find(key);
    if (j == nullptr || !j->is_number()) {
        return dec.fail(std::string("missing number field '") + key + "'");
    }
    out = j->as_double();
    return true;
}

const Json* get_array(const Json& obj, const char* key, Dec& dec) {
    const Json* j = obj.find(key);
    if (j == nullptr || !j->is_array()) {
        dec.fail(std::string("missing array field '") + key + "'");
        return nullptr;
    }
    return j;
}

/// Bounds-checked enum decode: values outside [0, max] are corruption.
template <typename E>
bool get_enum(const Json& obj, const char* key, int max, E& out, Dec& dec) {
    std::int64_t v = 0;
    if (!get_i64(obj, key, v, dec)) return false;
    if (v < 0 || v > max) return dec.fail(std::string("enum field '") + key + "' out of range");
    out = static_cast<E>(v);
    return true;
}

constexpr int kMaxSigKind = static_cast<int>(sig::Sig::Kind::kXmlElement);
constexpr int kMaxValueType = static_cast<int>(sig::Sig::ValueType::kAny);
constexpr int kMaxUnknownReason = static_cast<int>(sig::UnknownReason::kBudgetExhausted);
constexpr int kMaxMethod = static_cast<int>(http::Method::kPatch);
constexpr int kMaxBodyKind = static_cast<int>(http::BodyKind::kBinary);
constexpr int kMaxConsumerKind = static_cast<int>(semantics::ConsumerKind::kUi);
constexpr int kMaxEventKind = static_cast<int>(xir::EventKind::kOnIntent);

bool decode_sig(const Json& j, sig::Sig& out, Dec& dec) {
    if (!j.is_object()) return dec.fail("sig node is not an object");
    if (!get_enum(j, "k", kMaxSigKind, out.kind, dec)) return false;
    out.value_type = sig::Sig::ValueType::kAny;
    if (j.find("v") != nullptr &&
        !get_enum(j, "v", kMaxValueType, out.value_type, dec)) {
        return false;
    }
    if (j.find("t") != nullptr && !get_str(j, "t", out.text, dec)) return false;
    if (const Json* ch = j.find("ch")) {
        if (!ch->is_array()) return dec.fail("sig 'ch' is not an array");
        out.children.resize(ch->items().size());
        for (std::size_t i = 0; i < ch->items().size(); ++i) {
            if (!decode_sig(ch->items()[i], out.children[i], dec)) return false;
        }
    }
    if (const Json* mem = j.find("mem")) {
        if (!mem->is_array()) return dec.fail("sig 'mem' is not an array");
        out.members.resize(mem->items().size());
        for (std::size_t i = 0; i < mem->items().size(); ++i) {
            const Json& pair = mem->items()[i];
            if (!pair.is_array() || pair.items().size() != 2 ||
                !pair.items()[0].is_string()) {
                return dec.fail("sig member is not a [key, sig] pair");
            }
            out.members[i].first = pair.items()[0].as_string();
            if (!decode_sig(pair.items()[1], out.members[i].second, dec)) return false;
        }
    }
    if (const Json* xt = j.find("xt")) {
        if (!xt->is_array()) return dec.fail("sig 'xt' is not an array");
        out.xml_text.resize(xt->items().size());
        for (std::size_t i = 0; i < xt->items().size(); ++i) {
            if (!decode_sig(xt->items()[i], out.xml_text[i], dec)) return false;
        }
    }
    out.repeated = false;
    if (j.find("rep") != nullptr && !get_bool(j, "rep", out.repeated, dec)) return false;
    out.reason = sig::UnknownReason::kUnspecified;
    if (j.find("rsn") != nullptr &&
        !get_enum(j, "rsn", kMaxUnknownReason, out.reason, dec)) {
        return false;
    }
    if (j.find("org") != nullptr && !get_str(j, "org", out.origin, dec)) return false;
    return true;
}

bool decode_sig_field(const Json& obj, const char* key, sig::Sig& out, Dec& dec) {
    const Json* j = obj.find(key);
    if (j == nullptr) return dec.fail(std::string("missing sig field '") + key + "'");
    return decode_sig(*j, out, dec);
}

bool decode_string_array(const Json& obj, const char* key,
                         std::vector<std::string>& out, Dec& dec) {
    const Json* arr = get_array(obj, key, dec);
    if (arr == nullptr) return false;
    out.reserve(arr->items().size());
    for (const Json& item : arr->items()) {
        if (!item.is_string()) return dec.fail(std::string("field '") + key + "' has a non-string item");
        out.push_back(item.as_string());
    }
    return true;
}

bool decode_stmt_ref(const Json& j, xir::StmtRef& out, Dec& dec) {
    if (!j.is_array() || j.items().size() != 3) return dec.fail("stmt ref is not [method, block, index]");
    for (const Json& part : j.items()) {
        if (!part.is_int() || part.as_int() < 0) return dec.fail("stmt ref has a non-integer part");
    }
    out.method_index = static_cast<std::uint32_t>(j.items()[0].as_int());
    out.block = static_cast<xir::BlockId>(j.items()[1].as_int());
    out.index = static_cast<std::uint32_t>(j.items()[2].as_int());
    return true;
}

bool decode_signature(const Json& j, sig::TransactionSignature& out, Dec& dec) {
    if (!j.is_object()) return dec.fail("signature is not an object");
    if (!get_enum(j, "m", kMaxMethod, out.method, dec)) return false;
    if (!decode_sig_field(j, "uri", out.uri, dec)) return false;
    const Json* headers = get_array(j, "hdr", dec);
    if (headers == nullptr) return false;
    out.headers.resize(headers->items().size());
    for (std::size_t i = 0; i < headers->items().size(); ++i) {
        const Json& pair = headers->items()[i];
        if (!pair.is_array() || pair.items().size() != 2) {
            return dec.fail("header is not a [name, value] sig pair");
        }
        if (!decode_sig(pair.items()[0], out.headers[i].first, dec)) return false;
        if (!decode_sig(pair.items()[1], out.headers[i].second, dec)) return false;
    }
    if (!get_bool(j, "hb", out.has_body, dec)) return false;
    if (!decode_sig_field(j, "body", out.body, dec)) return false;
    if (!get_enum(j, "bk", kMaxBodyKind, out.body_kind, dec)) return false;
    if (!get_bool(j, "hrb", out.has_response_body, dec)) return false;
    if (!decode_sig_field(j, "rbody", out.response_body, dec)) return false;
    if (!get_enum(j, "rk", kMaxBodyKind, out.response_kind, dec)) return false;
    if (!get_str(j, "lib", out.library, dec)) return false;
    if (!get_enum(j, "cons", kMaxConsumerKind, out.consumer, dec)) return false;
    if (!decode_string_array(j, "res", out.resource_refs, dec)) return false;
    return true;
}

bool decode_transaction(const Json& j, core::ReportTransaction& out, Dec& dec) {
    if (!j.is_object()) return dec.fail("transaction is not an object");
    const Json* signature = j.find("sig");
    if (signature == nullptr) return dec.fail("missing transaction field 'sig'");
    if (!decode_signature(*signature, out.signature, dec)) return false;
    if (!get_str(j, "ur", out.uri_regex, dec)) return false;
    if (!get_str(j, "br", out.body_regex, dec)) return false;
    if (!get_str(j, "rr", out.response_regex, dec)) return false;
    if (!decode_string_array(j, "trg", out.triggers, dec)) return false;
    const Json* kinds = get_array(j, "trgk", dec);
    if (kinds == nullptr) return false;
    out.trigger_kinds.reserve(kinds->items().size());
    for (const Json& kind : kinds->items()) {
        if (!kind.is_int() || kind.as_int() < 0 || kind.as_int() > kMaxEventKind) {
            return dec.fail("trigger kind out of range");
        }
        out.trigger_kinds.push_back(static_cast<xir::EventKind>(kind.as_int()));
    }
    if (!decode_string_array(j, "cons", out.consumers, dec)) return false;
    if (!decode_string_array(j, "src", out.sources, dec)) return false;
    const Json* site = j.find("dp");
    if (site == nullptr) return dec.fail("missing transaction field 'dp'");
    if (!decode_stmt_ref(*site, out.dp_site, dec)) return false;
    if (!get_size(j, "ctx", out.context_count, dec)) return false;
    return true;
}

bool decode_name_count(const Json& obj, const char* key,
                       std::vector<std::pair<std::string, std::size_t>>& out, Dec& dec) {
    const Json* arr = get_array(obj, key, dec);
    if (arr == nullptr) return false;
    out.reserve(arr->items().size());
    for (const Json& pair : arr->items()) {
        if (!pair.is_array() || pair.items().size() != 2 ||
            !pair.items()[0].is_string() || !pair.items()[1].is_int() ||
            pair.items()[1].as_int() < 0) {
            return dec.fail(std::string("field '") + key + "' row is not [name, count]");
        }
        out.emplace_back(pair.items()[0].as_string(),
                         static_cast<std::size_t>(pair.items()[1].as_int()));
    }
    return true;
}

bool decode_name_u64(const Json& obj, const char* key,
                     std::vector<std::pair<std::string, std::uint64_t>>& out, Dec& dec) {
    const Json* arr = get_array(obj, key, dec);
    if (arr == nullptr) return false;
    out.reserve(arr->items().size());
    for (const Json& pair : arr->items()) {
        if (!pair.is_array() || pair.items().size() != 2 ||
            !pair.items()[0].is_string() || !pair.items()[1].is_int() ||
            pair.items()[1].as_int() < 0) {
            return dec.fail(std::string("field '") + key + "' row is not [name, count]");
        }
        out.emplace_back(pair.items()[0].as_string(),
                         static_cast<std::uint64_t>(pair.items()[1].as_int()));
    }
    return true;
}

bool decode_stats(const Json& j, core::AnalysisStats& out, Dec& dec) {
    if (!j.is_object()) return dec.fail("stats is not an object");
    if (!get_size(j, "ts", out.total_statements, dec)) return false;
    if (!get_size(j, "ss", out.slice_statements, dec)) return false;
    if (!get_size(j, "dps", out.dp_sites, dec)) return false;
    if (!get_size(j, "cx", out.contexts, dec)) return false;
    if (!get_size(j, "dic", out.dropped_intent_contexts, dec)) return false;
    if (!get_double(j, "sec", out.analysis_seconds, dec)) return false;
    const Json* phases = get_array(j, "ph", dec);
    if (phases == nullptr) return false;
    out.phases.reserve(phases->items().size());
    for (const Json& pair : phases->items()) {
        if (!pair.is_array() || pair.items().size() != 2 ||
            !pair.items()[0].is_string() || !pair.items()[1].is_number()) {
            return dec.fail("phase row is not [name, seconds]");
        }
        out.phases.push_back(
            {pair.items()[0].as_string(), pair.items()[1].as_double()});
    }
    if (!decode_name_u64(j, "ctr", out.counters, dec)) return false;
    if (!get_size(j, "steps", out.budget_steps_used, dec)) return false;
    if (!get_bool(j, "bex", out.budget_exhausted, dec)) return false;
    if (!get_u64(j, "peak", out.peak_bytes, dec)) return false;
    return true;
}

bool decode_audit(const Json& j, core::AnalysisAudit& out, Dec& dec) {
    if (!j.is_object()) return dec.fail("audit is not an object");
    if (!decode_name_count(j, "ur", out.unknown_reasons, dec)) return false;
    if (!get_size(j, "ut", out.unknown_total, dec)) return false;
    const Json* sites = get_array(j, "sites", dec);
    if (sites == nullptr) return false;
    out.dp_sites.resize(sites->items().size());
    for (std::size_t i = 0; i < sites->items().size(); ++i) {
        const Json& row = sites->items()[i];
        core::DpSiteAudit& site = out.dp_sites[i];
        if (!row.is_object()) return dec.fail("audit site is not an object");
        const Json* ref = row.find("s");
        if (ref == nullptr) return dec.fail("missing audit site field 's'");
        if (!decode_stmt_ref(*ref, site.site, dec)) return false;
        if (!get_str(row, "dp", site.dp, dec)) return false;
        if (!get_str(row, "loc", site.location, dec)) return false;
        if (!get_str(row, "out", site.outcome, dec)) return false;
        if (!get_size(row, "cx", site.contexts, dec)) return false;
        if (!get_size(row, "dic", site.dropped_intent_contexts, dec)) return false;
        if (!get_size(row, "b", site.built, dec)) return false;
    }
    if (!decode_name_u64(j, "um", out.unmodeled_apis, dec)) return false;
    return true;
}

}  // namespace

text::Json report_to_json(const core::AnalysisReport& report) {
    Json txns = Json::array();
    for (const core::ReportTransaction& t : report.transactions) {
        Json obj = Json::object();
        obj.set("sig", signature_to_json(t.signature));
        obj.set("ur", Json(t.uri_regex));
        obj.set("br", Json(t.body_regex));
        obj.set("rr", Json(t.response_regex));
        obj.set("trg", string_array(t.triggers));
        Json kinds = Json::array();
        for (xir::EventKind kind : t.trigger_kinds) {
            kinds.push_back(Json(static_cast<int>(kind)));
        }
        obj.set("trgk", std::move(kinds));
        obj.set("cons", string_array(t.consumers));
        obj.set("src", string_array(t.sources));
        obj.set("dp", stmt_ref_json(t.dp_site));
        obj.set("ctx", Json(static_cast<std::int64_t>(t.context_count)));
        txns.push_back(std::move(obj));
    }

    Json deps = Json::array();
    for (const txn::Dependency& d : report.dependencies) {
        Json row = Json::array();
        row.push_back(Json(static_cast<std::int64_t>(d.from)));
        row.push_back(Json(static_cast<std::int64_t>(d.to)));
        row.push_back(Json(d.response_field));
        row.push_back(Json(d.request_field));
        row.push_back(Json(d.via));
        deps.push_back(std::move(row));
    }

    const core::AnalysisStats& s = report.stats;
    Json stats = Json::object();
    stats.set("ts", Json(static_cast<std::int64_t>(s.total_statements)));
    stats.set("ss", Json(static_cast<std::int64_t>(s.slice_statements)));
    stats.set("dps", Json(static_cast<std::int64_t>(s.dp_sites)));
    stats.set("cx", Json(static_cast<std::int64_t>(s.contexts)));
    stats.set("dic", Json(static_cast<std::int64_t>(s.dropped_intent_contexts)));
    // Doubles survive the round trip exactly: the printer renders %.17g,
    // which is lossless for binary64 — a warm run replays the cold run's
    // timings bit-for-bit.
    stats.set("sec", Json(s.analysis_seconds));
    Json phases = Json::array();
    for (const core::PhaseTiming& p : s.phases) {
        Json pair = Json::array();
        pair.push_back(Json(p.name));
        pair.push_back(Json(p.seconds));
        phases.push_back(std::move(pair));
    }
    stats.set("ph", std::move(phases));
    stats.set("ctr", name_u64_array(s.counters));
    stats.set("steps", Json(static_cast<std::int64_t>(s.budget_steps_used)));
    stats.set("bex", Json(s.budget_exhausted));
    stats.set("peak", Json(static_cast<std::int64_t>(s.peak_bytes)));

    const core::AnalysisAudit& a = report.audit;
    Json audit = Json::object();
    audit.set("ur", name_count_array(a.unknown_reasons));
    audit.set("ut", Json(static_cast<std::int64_t>(a.unknown_total)));
    Json sites = Json::array();
    for (const core::DpSiteAudit& site : a.dp_sites) {
        Json row = Json::object();
        row.set("s", stmt_ref_json(site.site));
        row.set("dp", Json(site.dp));
        row.set("loc", Json(site.location));
        row.set("out", Json(site.outcome));
        row.set("cx", Json(static_cast<std::int64_t>(site.contexts)));
        row.set("dic", Json(static_cast<std::int64_t>(site.dropped_intent_contexts)));
        row.set("b", Json(static_cast<std::int64_t>(site.built)));
        sites.push_back(std::move(row));
    }
    audit.set("sites", std::move(sites));
    audit.set("um", name_u64_array(a.unmodeled_apis));

    Json doc = Json::object();
    doc.set("app", Json(report.app_name));
    doc.set("txns", std::move(txns));
    doc.set("deps", std::move(deps));
    doc.set("stats", std::move(stats));
    doc.set("audit", std::move(audit));
    return doc;
}

Result<core::AnalysisReport> report_from_json(const text::Json& doc) {
    Dec dec;
    core::AnalysisReport report;
    if (!doc.is_object()) return Error("report is not an object");
    if (!get_str(doc, "app", report.app_name, dec)) return Error(dec.err);

    const Json* txns = get_array(doc, "txns", dec);
    if (txns == nullptr) return Error(dec.err);
    report.transactions.resize(txns->items().size());
    for (std::size_t i = 0; i < txns->items().size(); ++i) {
        if (!decode_transaction(txns->items()[i], report.transactions[i], dec)) {
            return Error("transaction " + std::to_string(i) + ": " + dec.err);
        }
    }

    const Json* deps = get_array(doc, "deps", dec);
    if (deps == nullptr) return Error(dec.err);
    report.dependencies.resize(deps->items().size());
    for (std::size_t i = 0; i < deps->items().size(); ++i) {
        const Json& row = deps->items()[i];
        txn::Dependency& d = report.dependencies[i];
        if (!row.is_array() || row.items().size() != 5 || !row.items()[0].is_int() ||
            !row.items()[1].is_int() || !row.items()[2].is_string() ||
            !row.items()[3].is_string() || !row.items()[4].is_string()) {
            return Error("dependency " + std::to_string(i) + " is malformed");
        }
        std::int64_t from = row.items()[0].as_int();
        std::int64_t to = row.items()[1].as_int();
        // Edges index into the transaction vector; out-of-range indices
        // would crash every consumer, so they are corruption here.
        if (from < 0 || to < 0 ||
            static_cast<std::size_t>(from) >= report.transactions.size() ||
            static_cast<std::size_t>(to) >= report.transactions.size()) {
            return Error("dependency " + std::to_string(i) + " index out of range");
        }
        d.from = static_cast<std::size_t>(from);
        d.to = static_cast<std::size_t>(to);
        d.response_field = row.items()[2].as_string();
        d.request_field = row.items()[3].as_string();
        d.via = row.items()[4].as_string();
    }

    const Json* stats = doc.find("stats");
    if (stats == nullptr) return Error("missing field 'stats'");
    if (!decode_stats(*stats, report.stats, dec)) return Error("stats: " + dec.err);

    const Json* audit = doc.find("audit");
    if (audit == nullptr) return Error("missing field 'audit'");
    if (!decode_audit(*audit, report.audit, dec)) return Error("audit: " + dec.err);

    return report;
}

}  // namespace extractocol::cache
