// Persistent content-addressed report cache (ROADMAP item 2).
//
// Layer 1 of fleet-scale re-analysis: one on-disk entry per *content* of an
// .xapk input. The key is truncated SHA-256 (128 bits) of the raw
// serialized text — collision-resistant, because a key collision would make
// the cache serve one app's report for another app's bytes and no envelope
// check can catch that; never std::hash and never intern Symbol ids (the
// PR 7 stability contract: nothing process-local may reach persisted
// state). A hit bypasses the whole analyzer and replays the stored report
// byte-identically, including the cold run's timings.
//
// Reports routed through analyze_batch_cached carry no per-run
// stats.counters window and no counter-derived audit.unmodeled_apis table:
// those are deltas of the process-global metrics registry, so overlapping
// analyses (batch --jobs, concurrent daemon requests) contaminate each
// other's windows — the values are not a function of the input bytes and
// must never be persisted or served. The global registry (--metrics,
// --metrics-prom) keeps the exact aggregates.
//
// On-disk envelope (`extractocol.cache/v1`): one ASCII header line
//
//   extractocol.cache/v1 key=<32 hex> analyzer=<version> bytes=<n> fnv=<16 hex>
//
// followed by exactly <n> bytes of compact JSON payload (the codec.hpp
// report document). Integrity is checked outermost-first on every load:
// schema tag, key echo, analyzer version, payload length, payload FNV-1a,
// JSON parse, strict decode. Any mismatch marks the entry corrupt —
// counted as `cache.corrupt_entries`, logged, deleted — and the lookup
// falls back to cold analysis; a *version* mismatch is a clean invalidation
// (counted as an eviction) rather than corruption. Wrong output is never an
// outcome.
//
// Writers build entries in a hidden temp file and publish with one atomic
// rename(), so concurrent writers (daemon + batch CLI, or two daemon
// requests racing on the same miss) are last-writer-wins and readers only
// ever see complete envelopes.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/analyzer.hpp"
#include "text/json.hpp"

namespace extractocol::obs {
class Counter;
class Gauge;
}  // namespace extractocol::obs

namespace extractocol::cache {

/// On-disk envelope schema tag; bump when the envelope layout changes
/// (entries with any other tag are treated as corrupt).
inline constexpr std::string_view kCacheSchema = "extractocol.cache/v1";

struct CacheOptions {
    /// Cache directory; created if absent.
    std::string dir;
    /// Evict oldest entries once the directory exceeds this many bytes
    /// (0 = unbounded).
    std::uint64_t max_bytes = 0;
    /// Entries written by any other version are invalidated on load.
    std::string analyzer_version = std::string(core::kAnalyzerVersion);
};

/// Per-instance operation tally (the manifest `cache` block). The same
/// counts are mirrored into the global metrics registry as `cache.*`
/// counters, but registry counters accumulate across instances in one
/// process; these are this cache handle's own deltas.
struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t corrupt_entries = 0;
    std::uint64_t evictions = 0;
};

class ReportCache {
public:
    explicit ReportCache(CacheOptions options);

    /// Content key of one input: 32 hex chars of truncated SHA-256 over the
    /// raw bytes (collision-resistant). A pure function of the text.
    [[nodiscard]] static std::string key_for(std::string_view xapk_text);

    /// Loads and fully verifies the entry for `key`. Any integrity failure
    /// deletes the entry and returns nullopt (see file comment) — the
    /// caller always has a correct fallback: analyze cold.
    [[nodiscard]] std::optional<core::AnalysisReport> load(const std::string& key);

    /// Atomically publishes the entry for `key` (write-temp + rename,
    /// last-writer-wins). Returns false on I/O failure, which is logged and
    /// otherwise harmless: the entry simply stays cold.
    bool store(const std::string& key, const core::AnalysisReport& report);

    [[nodiscard]] const std::string& dir() const { return options_.dir; }
    [[nodiscard]] CacheStats stats() const;
    /// Total bytes of committed entries currently on disk.
    [[nodiscard]] std::uint64_t bytes_on_disk() const;
    /// The manifest `cache` block: dir, per-instance counts, bytes on disk.
    [[nodiscard]] text::Json stats_json() const;

private:
    [[nodiscard]] std::filesystem::path entry_path(const std::string& key) const;
    /// Counts + logs + deletes a corrupt entry (then the lookup misses).
    /// `entry_bytes` is the deleted file's size, for the running total.
    void mark_corrupt(const std::filesystem::path& path, const std::string& key,
                      const char* why, std::uint64_t entry_bytes);
    /// Deletes oldest-mtime entries until the directory fits max_bytes.
    void evict_to_limit();
    /// Applies a store/remove delta to the running total and the gauge.
    void adjust_bytes(std::int64_t delta);
    void update_bytes_gauge();

    CacheOptions options_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> stores_{0};
    std::atomic<std::uint64_t> corrupt_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> temp_seq_{0};
    /// Running bytes-on-disk total: seeded by one scan at construction,
    /// adjusted per store/remove, resynced exactly by every eviction pass.
    /// Keeps cache operations O(1) in the number of entries (a rescan per
    /// store made every touch O(entries)); concurrent same-key writers can
    /// drift it slightly between resyncs, which the gauge tolerates.
    std::atomic<std::int64_t> bytes_estimate_{0};
    std::mutex evict_mutex_;
    // Registry instruments, acquired once; created only when a cache is
    // actually constructed so cacheless runs keep their counter baseline.
    obs::Counter* m_hits_;
    obs::Counter* m_misses_;
    obs::Counter* m_stores_;
    obs::Counter* m_corrupt_;
    obs::Counter* m_evictions_;
    obs::Gauge* m_bytes_;
};

/// One analyze_batch run routed through the cache.
struct CachedBatch {
    /// Per-input outcomes in input order, exactly analyze_batch's contract.
    std::vector<core::BatchItem> items;
    /// Parallel to `items`: 1 when the report was replayed from the cache.
    std::vector<char> from_cache;
    /// Parallel to `items`: the content key of each input (computed for the
    /// hit/miss split anyway; exposed so the daemon's per-request telemetry
    /// can attribute a request to its cache entry without re-hashing).
    std::vector<std::string> keys;
    std::size_t hits = 0;
    std::size_t misses = 0;
};

/// Cache-aware analyze_batch: serves hits from `cache`, runs the misses
/// through one Analyzer::analyze_batch (keeping the --jobs pool semantics),
/// stores every successful miss, and merges results back in input order.
/// Error items are never cached. Successful reports are served with
/// stats.counters / audit.unmodeled_apis stripped (see file comment) so a
/// report on this path is a pure function of its input bytes. `cache` may
/// be null (everything misses; reports are still stripped).
/// This overload reuses a long-lived analyzer (the --serve daemon's warm
/// semantic model).
[[nodiscard]] CachedBatch analyze_batch_cached(const core::Analyzer& analyzer,
                                               ReportCache* cache,
                                               std::vector<core::BatchInput> inputs);

/// Same, constructing the analyzer from `options`. batch_progress is
/// re-based over the *whole* batch — hits count as already done — so a
/// --progress line over a warm run still reads k/N of N inputs.
[[nodiscard]] CachedBatch analyze_batch_cached(const core::AnalyzerOptions& options,
                                               ReportCache* cache,
                                               std::vector<core::BatchInput> inputs);

}  // namespace extractocol::cache
