// Lossless AnalysisReport <-> JSON codec for the persistent cache.
//
// The public AnalysisReport::to_json() is a *rendering*: it flattens
// signature trees into regexes/schemas and drops fields the report can not
// be rebuilt from. Cache entries must replay a cold run byte-identically —
// to_text, to_json, audit, --explain, eval scoring — so this codec
// round-trips every field: full Sig trees (kind, value type, provenance,
// members, repetition), transaction signatures, dependency edges, stats
// (including phase timings and counter deltas, which are replayed verbatim
// on a hit), and the per-DP-site audit.
//
// Decoding is strict: unknown enum values, missing fields, type mismatches,
// and out-of-range dependency indices all fail with an error (the cache
// layer treats any decode failure as a corrupt entry and falls back to cold
// analysis). Field names are short — entries are written once per app and
// parsed on every hit.
#pragma once

#include "core/analyzer.hpp"
#include "support/result.hpp"
#include "text/json.hpp"

namespace extractocol::cache {

/// Encodes a report with full fidelity (see file comment).
[[nodiscard]] text::Json report_to_json(const core::AnalysisReport& report);

/// Strictly decodes a report_to_json document.
[[nodiscard]] Result<core::AnalysisReport> report_from_json(const text::Json& doc);

}  // namespace extractocol::cache
