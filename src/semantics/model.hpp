// The API semantic model (§3.2): machine-readable knowledge about the
// Android/Java APIs that protocol-processing code uses. One registry serves
// four consumers:
//
//  * the slicer — demarcation points (HTTP execute calls) and their
//    request/response operand roles (§3.1);
//  * the taint engine — per-API taint transfer rules (which operands flow
//    where), plus implicit-callback resolution for thread libraries (§3.4);
//  * the signature builder — a SigAction per API describing its effect in
//    the signature intermediate language (append, JSON put, encode ...);
//  * behavior characterization — consumption sinks (media player, DB, file)
//    and origin sources (microphone, camera, location) (§2).
//
// The model is extensible at runtime (paper: "an easy plugin for adding new
// API semantics"): register() adds entries.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "xir/callgraph.hpp"
#include "xir/ir.hpp"

namespace extractocol::semantics {

// ------------------------------------------------------------------ roles --

/// Position of a value in a call: receiver, return value, or i-th argument.
struct Role {
    enum class Pos { kBase, kReturn, kArg };
    Pos pos = Pos::kReturn;
    int arg_index = 0;

    static Role base() { return {Pos::kBase, 0}; }
    static Role ret() { return {Pos::kReturn, 0}; }
    static Role arg(int i) { return {Pos::kArg, i}; }
    bool operator==(const Role&) const = default;
};

/// Taint transfer: if `from` is tainted before the call, `to` is tainted
/// after it (forward direction; the backward engine inverts these).
struct FlowRule {
    Role from;
    Role to;
};

// ------------------------------------------------------------ sig actions --

/// Effect of an API call in the signature intermediate language. The
/// signature builder (src/sig) interprets these; the interpreter implements
/// the concrete counterparts.
enum class SigAction {
    kNone,
    // strings
    kStringBuilderInit,   // new StringBuilder([str])
    kAppend,              // sb.append(x) -> sb (returns base)
    kToString,            // sb.toString() / obj.toString()
    kStringConcat,        // String.concat / +
    kStringValueOf,       // String.valueOf(x)
    kStringTrim,          // identity-ish transforms (trim, toLowerCase...)
    kStringFormat,        // String.format(fmt, args...)
    kUrlEncode,           // URLEncoder.encode(s, cs)
    kStringToUnknown,     // substring/replace/split... -> unknown derived
    // JSON build / parse
    kJsonNewObject,       // new JSONObject() | new JSONObject(String)
    kJsonNewArray,        // new JSONArray()
    kJsonPut,             // obj.put(key, value)
    kJsonArrayPut,        // arr.put(value)
    kJsonGet,             // obj.get/getString/getInt/optString(key)
    kJsonGetObject,       // obj.getJSONObject(key)
    kJsonGetArray,        // obj.getJSONArray(key)
    kJsonArrayGet,        // arr.getJSONObject(i) / arr.get(i)
    kJsonArrayLength,
    kJsonToString,        // obj.toString()
    kGsonFromJson,        // gson.fromJson(str, cls) -> reflected POJO
    kGsonToJson,          // gson.toJson(pojo) -> string
    // XML
    kXmlParse,            // parser.parse(stream) -> document
    kXmlGetElement,       // element.getElementsByTagName / getChild
    kXmlGetAttribute,
    kXmlGetText,
    // HTTP objects
    kHttpRequestInit,     // new HttpGet(uri) etc. (method in metadata)
    kHttpSetEntity,       // request.setEntity(entity)
    kHttpSetHeader,       // request.setHeader(name, value)
    kStringEntityInit,    // new StringEntity(body)
    kFormEntityInit,      // new UrlEncodedFormEntity(list)
    kNameValuePairInit,   // new BasicNameValuePair(key, value)
    kGetEntity,           // response.getEntity()
    kGetContent,          // entity.getContent() -> stream
    kEntityToString,      // EntityUtils.toString(entity)
    kReadLine,            // reader.readLine()
    kUrlInit,             // new URL(string)
    kOpenConnection,      // url.openConnection()
    kSetRequestMethod,    // conn.setRequestMethod("POST")
    kGetOutputStream,     // conn.getOutputStream()
    kStreamWrite,         // out.write(bytes/string)
    kOkRequestBuilderInit,
    kOkUrl,               // builder.url(str)
    kOkMethod,            // builder.get()/post(body)
    kOkHeader,            // builder.header(k, v)
    kOkBuild,             // builder.build() -> Request
    kOkNewCall,           // client.newCall(request) -> Call
    kOkBodyString,        // response.body().string()
    kVolleyRequestInit,   // new StringRequest(method, url, listener, err)
    kVolleyAdd,           // queue.add(request)
    // containers
    kListInit,
    kListAdd,
    kListGet,
    kMapInit,
    kMapPut,
    kMapGet,
    // android platform
    kResourceGetString,   // resources.getString(id) -> constant from table
    kDbInsert,            // db.insert(table, null, contentValues)
    kDbUpdate,            // db.update(table, values, ...)
    kDbQuery,             // db.query(table, ...) -> cursor
    kCursorGetString,     // cursor.getString(columnIndexOrName)
    kContentValuesInit,
    kContentValuesPut,    // values.put(column, v)
    kPrefsGetString,      // SharedPreferences.getString(key, def)
    kPrefsPutString,      // editor.putString(key, v)
    kIntentPutExtra,      // intent.putExtra — unsupported flow (limitation)
    kMediaSetDataSource,  // mediaPlayer.setDataSource(uri) — consumer
    kImageLoad,           // imageView-ish load(uri) — consumer
    kFileWrite,           // fileOutput.write — consumer
    kMicRead,             // AudioRecord.read — origin source
    kCameraRead,          // camera frame — origin source
    kLocationGet,         // location.getLatitude()... — origin source
    kUserInput,           // editText.getText() — origin source
    kThreadExecute,       // AsyncTask.execute(args...) — implicit call flow
    kSocketInit,          // new Socket(host, port) — §4 extension: raw text
                          // protocols over sockets, parsed as HTTP when the
                          // written stream is HTTP-shaped
};

/// What the value feeding this API ends up driving (for "how network data is
/// consumed" characterization, §2/Table 4) .
enum class ConsumerKind { kNone, kMediaPlayer, kImageView, kFile, kDatabase, kUi };

/// Where a value originates (for "where network-bound data comes from").
enum class SourceKind { kNone, kMicrophone, kCamera, kLocation, kUserInput, kPrefs, kResource };

struct ApiModel {
    std::string cls;
    std::string method;
    std::vector<FlowRule> flows;
    SigAction action = SigAction::kNone;
    ConsumerKind consumer = ConsumerKind::kNone;
    SourceKind source = SourceKind::kNone;
    /// For kHttpRequestInit: the HTTP method this constructor implies.
    std::string http_method;
};

// ------------------------------------------------------------ demarcation --

/// Response delivered asynchronously into a callback: the listener object is
/// `arg_index`-th argument; its class's `method` receives the response as
/// parameter `param_index` (0-based among declared params, after `this`).
struct CallbackRoute {
    int arg_index = 0;
    std::string method;
    int param_index = 0;
};

/// An HTTP "execute" API: the boundary between request-construction code and
/// response-processing code (§3.1).
struct DemarcationSpec {
    std::string cls;
    std::string method;
    std::optional<Role> request;               // where the request object sits
    std::optional<Role> response;              // synchronous response position
    std::optional<CallbackRoute> response_callback;  // async delivery
    std::string library;                       // provenance label
};

// -------------------------------------------------------------- registry --

class SemanticModel {
public:
    /// Builds the default model: org.apache.http, java.net, okhttp3, volley,
    /// retrofit, org.json, gson, XML, containers, strings, android platform.
    static SemanticModel standard();

    void register_api(ApiModel model);
    void register_demarcation(DemarcationSpec spec);

    [[nodiscard]] const ApiModel* api(std::string_view cls, std::string_view method) const;
    /// All modeled classes / the models for one class (used by the
    /// de-obfuscation matcher).
    [[nodiscard]] std::vector<std::string> modeled_classes() const;
    [[nodiscard]] std::vector<const ApiModel*> apis_for_class(std::string_view cls) const;
    [[nodiscard]] const DemarcationSpec* demarcation(std::string_view cls,
                                                     std::string_view method) const;

    /// True if the model knows this API at all — as a semantic entry OR as a
    /// demarcation point (DP "execute" calls live in a separate table, so an
    /// unmodeled-API audit that only checked api() would flag every DP).
    [[nodiscard]] bool is_modeled(std::string_view cls, std::string_view method) const {
        return api(cls, method) != nullptr || demarcation(cls, method) != nullptr;
    }
    [[nodiscard]] const std::vector<DemarcationSpec>& demarcations() const {
        return demarcations_;
    }

    /// Number of registered demarcation points / distinct DP classes (the
    /// paper quotes "39 demarcation points from 16 classes").
    [[nodiscard]] std::size_t demarcation_count() const { return demarcations_.size(); }
    [[nodiscard]] std::size_t demarcation_class_count() const;

    /// CallbackResolver for the call-graph builder: connects AsyncTask-style
    /// execute() calls and volley/retrofit listeners to app callback methods.
    [[nodiscard]] xir::CallbackResolver callback_resolver() const;

    /// True if `cls` belongs to the modeled library namespace (used by the
    /// obfuscation detector: library names absent from the model suggest an
    /// obfuscated bundled library).
    [[nodiscard]] bool is_known_library_class(std::string_view cls) const;

private:
    // Keyed by the stable FNV-1a hash of "Cls.method" so lookups on the hot
    // analysis paths never build a concatenated string. Entries carry their
    // own cls/method, which lookups re-verify; the (never yet observed)
    // 64-bit collision case falls back to the overflow lists.
    std::unordered_map<std::uint64_t, ApiModel> apis_;
    std::unordered_map<std::uint64_t, DemarcationSpec> dps_;
    std::vector<ApiModel> api_overflow_;
    std::vector<DemarcationSpec> dp_overflow_;
    std::vector<DemarcationSpec> demarcations_;
};

}  // namespace extractocol::semantics
