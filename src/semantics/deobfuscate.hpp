// Library de-obfuscation (§3.4): when an app bundles an HTTP/JSON library
// and ProGuard renamed it, the semantic model no longer matches by name.
// This pass compares structural "signatures" of obfuscated phantom classes
// (how many methods, their arities, chaining shape, constructor use) against
// the classes in the semantic model and produces a rename map back to the
// canonical API names, which is then applied to the program before analysis.
#pragma once

#include <string>
#include <unordered_map>

#include "semantics/model.hpp"
#include "xir/ir.hpp"

namespace extractocol::semantics {

struct DeobfuscationResult {
    /// obfuscated phantom class -> canonical API class
    std::unordered_map<std::string, std::string> classes;
    /// "obfCls.obfMethod" -> canonical method name
    std::unordered_map<std::string, std::string> methods;
    /// Classes we could not identify (analysis degrades to wildcards there).
    std::vector<std::string> unresolved;
};

/// Infers the mapping. Only phantom classes (no body in `program`) that are
/// not already known library names are considered.
DeobfuscationResult infer_deobfuscation(const xir::Program& program,
                                        const SemanticModel& model);

/// Applies a mapping in place (rewrites callee refs, local/field types,
/// NewObject class names).
void apply_deobfuscation(xir::Program& program, const DeobfuscationResult& mapping);

}  // namespace extractocol::semantics
