#include "semantics/deobfuscate.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "support/log.hpp"
#include "support/strings.hpp"

namespace extractocol::semantics {

using namespace xir;

namespace {

/// Structural fingerprint of one (possibly obfuscated) API method, derived
/// purely from how call sites use it — names are assumed meaningless.
struct MethodFeature {
    int argc = 0;
    bool returns_value = false;
    bool chained = false;  // receiver type == result type (builder pattern)
    bool is_ctor = false;
    std::size_t call_count = 0;  // observed uses (tie-breaking)
};

bool feature_match(const MethodFeature& a, const MethodFeature& b) {
    return a.argc == b.argc && a.returns_value == b.returns_value &&
           a.chained == b.chained && a.is_ctor == b.is_ctor;
}

/// Fingerprint of a semantic-model method, derived from its flow rules.
MethodFeature model_feature(const ApiModel& api) {
    MethodFeature f;
    f.is_ctor = api.method == "<init>";
    int max_arg = -1;
    bool base_to_ret = false;
    bool arg_to_base = false;
    for (const auto& rule : api.flows) {
        if (rule.from.pos == Role::Pos::kArg) max_arg = std::max(max_arg, rule.from.arg_index);
        if (rule.to.pos == Role::Pos::kArg) max_arg = std::max(max_arg, rule.to.arg_index);
        if (rule.to.pos == Role::Pos::kReturn) f.returns_value = true;
        if (rule.from.pos == Role::Pos::kBase && rule.to.pos == Role::Pos::kReturn) {
            base_to_ret = true;
        }
        if (rule.from.pos == Role::Pos::kArg && rule.to.pos == Role::Pos::kBase) {
            arg_to_base = true;
        }
    }
    f.argc = max_arg + 1;
    f.chained = base_to_ret && arg_to_base;
    return f;
}

struct ObservedMethod {
    std::string name;
    MethodFeature feature;
};

}  // namespace

DeobfuscationResult infer_deobfuscation(const Program& program, const SemanticModel& model) {
    DeobfuscationResult result;

    // 1. Collect observed features for each unknown phantom class.
    std::map<std::string, std::map<std::string, MethodFeature>> observed;
    for (const Method* m : program.method_table()) {
        for (const auto& block : m->blocks) {
            for (const auto& stmt : block.statements) {
                const auto* call = std::get_if<Invoke>(&stmt);
                if (!call) continue;
                const std::string& cls = call->callee.class_name;
                if (cls.empty() || program.find_class(cls)) continue;
                if (model.is_known_library_class(cls)) continue;
                MethodFeature& f = observed[cls][call->callee.method_name];
                f.argc = static_cast<int>(call->args.size());
                f.is_ctor = call->kind == InvokeKind::kSpecial;
                f.call_count += 1;
                if (call->dst) {
                    f.returns_value = true;
                    if (call->base) {
                        const auto& base_type = m->locals[*call->base].type;
                        const auto& dst_type = m->locals[*call->dst].type;
                        if (base_type == dst_type) f.chained = true;
                    }
                }
            }
        }
    }

    // 2. Score each unknown class against each modeled class.
    const auto candidates = model.modeled_classes();
    for (const auto& [obf_class, methods] : observed) {
        std::string best_class;
        int best_score = 0;
        for (const auto& candidate : candidates) {
            auto apis = model.apis_for_class(candidate);
            int score = 0;
            for (const auto& [obf_method, feature] : methods) {
                for (const ApiModel* api : apis) {
                    if (feature_match(feature, model_feature(*api))) {
                        score += 2;
                        break;
                    }
                }
            }
            // Penalize candidates with far more methods than observed (a
            // tiny observed surface should not match a huge class better
            // than a small exact one).
            score -= static_cast<int>(
                         std::max(apis.size(), methods.size()) -
                         std::min(apis.size(), methods.size()));
            // Ties break lexicographically — twin classes (StringBuilder /
            // StringBuffer) expose identical surfaces and either mapping is
            // semantically correct.
            if (score > best_score ||
                (score == best_score && score > 0 && !best_class.empty() &&
                 candidate < best_class)) {
                best_score = score;
                best_class = candidate;
            }
        }
        if (best_class.empty() || best_score <= 0) {
            result.unresolved.push_back(obf_class);
            continue;
        }
        result.classes[obf_class] = best_class;

        // 3. Map methods within the matched class: group by feature; order
        // ambiguous groups by observed call frequency vs model declaration
        // order ("when there are multiple methods with the same signature,
        // we look at the decompiled code and look for similarity" — our
        // stand-in for that similarity is usage frequency).
        auto apis = model.apis_for_class(best_class);
        std::set<const ApiModel*> used;
        std::vector<ObservedMethod> sorted_methods;
        for (const auto& [name, feature] : methods) sorted_methods.push_back({name, feature});
        std::sort(sorted_methods.begin(), sorted_methods.end(),
                  [](const ObservedMethod& a, const ObservedMethod& b) {
                      return a.feature.call_count > b.feature.call_count;
                  });
        for (const auto& om : sorted_methods) {
            for (const ApiModel* api : apis) {
                if (used.count(api) > 0) continue;
                if (feature_match(om.feature, model_feature(*api))) {
                    result.methods[obf_class + "." + om.name] = api->method;
                    used.insert(api);
                    break;
                }
            }
        }
    }
    return result;
}

void apply_deobfuscation(Program& program, const DeobfuscationResult& mapping) {
    auto map_class = [&](std::string& name) {
        auto it = mapping.classes.find(name);
        if (it != mapping.classes.end()) name = it->second;
    };
    for (auto& cls : program.classes) {
        for (auto& method : cls.methods) {
            for (auto& local : method.locals) map_class(local.type);
            map_class(method.return_type);
            for (auto& block : method.blocks) {
                for (auto& stmt : block.statements) {
                    if (auto* call = std::get_if<Invoke>(&stmt)) {
                        auto mit = mapping.methods.find(call->callee.qualified());
                        if (mit != mapping.methods.end()) {
                            call->callee.method_name = mit->second;
                        }
                        map_class(call->callee.class_name);
                    } else if (auto* alloc = std::get_if<NewObject>(&stmt)) {
                        map_class(alloc->class_name);
                    } else if (auto* load = std::get_if<LoadStatic>(&stmt)) {
                        map_class(load->class_name);
                    } else if (auto* store = std::get_if<StoreStatic>(&stmt)) {
                        map_class(store->class_name);
                    }
                }
            }
        }
    }
    program.reindex();
}

}  // namespace extractocol::semantics
