#include "semantics/model.hpp"

#include <set>

#include "support/strings.hpp"

namespace extractocol::semantics {

namespace {

FlowRule flow(Role from, Role to) { return {from, to}; }

/// Receiver-chained mutator: args taint the base and base taints the return
/// (StringBuilder.append and friends, which return `this`).
std::vector<FlowRule> chained(int argc) {
    std::vector<FlowRule> rules;
    for (int i = 0; i < argc; ++i) rules.push_back(flow(Role::arg(i), Role::base()));
    rules.push_back(flow(Role::base(), Role::ret()));
    return rules;
}

/// Constructor-style: args taint the base.
std::vector<FlowRule> into_base(int argc) {
    std::vector<FlowRule> rules;
    for (int i = 0; i < argc; ++i) rules.push_back(flow(Role::arg(i), Role::base()));
    return rules;
}

/// Accessor: base taints the return.
std::vector<FlowRule> from_base() { return {flow(Role::base(), Role::ret())}; }

/// Static transform: args taint the return.
std::vector<FlowRule> args_to_ret(int argc) {
    std::vector<FlowRule> rules;
    for (int i = 0; i < argc; ++i) rules.push_back(flow(Role::arg(i), Role::ret()));
    return rules;
}

/// Stable key of "cls.method" — bytewise identical to fnv1a of the
/// concatenated string, computed without building it.
std::uint64_t qualified_key(std::string_view cls, std::string_view method) {
    std::uint64_t h = 14695981039346656037ull;
    auto mix = [&h](std::string_view s) {
        for (char c : s) {
            h ^= static_cast<std::uint8_t>(c);
            h *= 1099511628211ull;
        }
    };
    mix(cls);
    mix(".");
    mix(method);
    return h;
}

}  // namespace

void SemanticModel::register_api(ApiModel model) {
    std::uint64_t key = qualified_key(model.cls, model.method);
    auto it = apis_.find(key);
    if (it != apis_.end() &&
        (it->second.cls != model.cls || it->second.method != model.method)) {
        api_overflow_.push_back(std::move(model));
        return;
    }
    apis_[key] = std::move(model);
}

void SemanticModel::register_demarcation(DemarcationSpec spec) {
    std::uint64_t key = qualified_key(spec.cls, spec.method);
    auto it = dps_.find(key);
    if (it != dps_.end() &&
        (it->second.cls != spec.cls || it->second.method != spec.method)) {
        dp_overflow_.push_back(spec);
    } else {
        dps_[key] = spec;
    }
    demarcations_.push_back(std::move(spec));
}

const ApiModel* SemanticModel::api(std::string_view cls, std::string_view method) const {
    auto it = apis_.find(qualified_key(cls, method));
    if (it != apis_.end() && it->second.cls == cls && it->second.method == method) {
        return &it->second;
    }
    for (const auto& model : api_overflow_) {
        if (model.cls == cls && model.method == method) return &model;
    }
    return nullptr;
}

std::vector<std::string> SemanticModel::modeled_classes() const {
    std::set<std::string> names;
    for (const auto& [key, model] : apis_) names.insert(model.cls);
    return {names.begin(), names.end()};
}

std::vector<const ApiModel*> SemanticModel::apis_for_class(std::string_view cls) const {
    std::vector<const ApiModel*> out;
    for (const auto& [key, model] : apis_) {
        if (model.cls == cls) out.push_back(&model);
    }
    return out;
}

const DemarcationSpec* SemanticModel::demarcation(std::string_view cls,
                                                  std::string_view method) const {
    auto it = dps_.find(qualified_key(cls, method));
    if (it != dps_.end() && it->second.cls == cls && it->second.method == method) {
        return &it->second;
    }
    for (const auto& spec : dp_overflow_) {
        if (spec.cls == cls && spec.method == method) return &spec;
    }
    return nullptr;
}

std::size_t SemanticModel::demarcation_class_count() const {
    std::set<std::string> classes;
    for (const auto& dp : demarcations_) classes.insert(dp.cls);
    return classes.size();
}

bool SemanticModel::is_known_library_class(std::string_view cls) const {
    static const char* kPrefixes[] = {
        "java.",           "javax.",        "android.",       "org.apache.http",
        "org.json",        "org.w3c.dom",   "okhttp3.",       "com.android.volley",
        "retrofit2.",      "com.google.gson", "com.loopj.",   "com.squareup.picasso",
        "rx.",             "com.fasterxml.jackson",
    };
    for (const char* prefix : kPrefixes) {
        if (strings::starts_with(cls, prefix)) return true;
    }
    return false;
}

xir::CallbackResolver SemanticModel::callback_resolver() const {
    // Captures `this` by value semantics via copy of needed tables? The model
    // outlives analyses in this codebase; capture by pointer.
    const SemanticModel* model = this;
    return [model](const xir::Program& program, const xir::Method& caller,
                   const xir::Invoke& invoke) -> std::vector<xir::MethodRef> {
        std::vector<xir::MethodRef> targets;
        const std::string& method = invoke.callee.method_name;

        auto declared_type = [&](xir::LocalId local) -> std::string {
            if (local < caller.locals.size()) return caller.locals[local].type;
            return "";
        };
        auto arg_type = [&](std::size_t index) -> std::string {
            if (index < invoke.args.size() && invoke.args[index].is_local()) {
                return declared_type(invoke.args[index].local);
            }
            return "";
        };
        auto add_if_present = [&](const std::string& cls, const char* name) {
            if (cls.empty()) return;
            xir::MethodRef ref{cls, name};
            if (program.resolve_virtual(ref)) {
                targets.push_back(program.resolve_virtual(ref)->ref());
            }
        };

        // AsyncTask.execute(params...) -> doInBackground -> onPostExecute.
        // The receiver's *declared* type is the app subclass.
        if (method == "execute" && invoke.base) {
            std::string receiver = declared_type(*invoke.base);
            const xir::Class* cls = program.find_class(receiver);
            bool is_async_task = false;
            while (cls) {
                if (cls->super == "android.os.AsyncTask") is_async_task = true;
                cls = program.find_class(cls->super);
            }
            if (is_async_task || (program.find_class(receiver) &&
                                  program.find_class(receiver)->super ==
                                      "android.os.AsyncTask")) {
                add_if_present(receiver, "doInBackground");
                add_if_present(receiver, "onPostExecute");
            }
        }
        // Thread.start() / FutureTask.run -> run() on the declared type.
        if ((method == "start" || method == "run") && invoke.base) {
            std::string receiver = declared_type(*invoke.base);
            const xir::Class* cls = program.find_class(receiver);
            if (cls && (cls->super == "java.lang.Thread" ||
                        cls->super == "java.util.concurrent.FutureTask")) {
                add_if_present(receiver, "run");
            }
        }
        // Listener-style delivery registered in the DP table: connect the
        // callsite to the listener's callback method.
        if (const DemarcationSpec* dp =
                model->demarcation(invoke.callee.class_name, method)) {
            if (dp->response_callback) {
                std::string listener =
                    arg_type(static_cast<std::size_t>(dp->response_callback->arg_index));
                add_if_present(listener, dp->response_callback->method.c_str());
            }
        }
        // rx.Observable.subscribe(observer) -> observer.onNext.
        if (method == "subscribe" &&
            strings::starts_with(invoke.callee.class_name, "rx.")) {
            add_if_present(arg_type(0), "onNext");
        }
        return targets;
    };
}

SemanticModel SemanticModel::standard() {
    SemanticModel m;
    using R = Role;
    auto api = [&m](std::string cls, std::string method, std::vector<FlowRule> flows,
                    SigAction action) {
        ApiModel model;
        model.cls = std::move(cls);
        model.method = std::move(method);
        model.flows = std::move(flows);
        model.action = action;
        m.register_api(std::move(model));
    };

    // ---------------------------------------------------------- strings --
    api("java.lang.StringBuilder", "<init>", into_base(1), SigAction::kStringBuilderInit);
    api("java.lang.StringBuilder", "append", chained(1), SigAction::kAppend);
    api("java.lang.StringBuilder", "toString", from_base(), SigAction::kToString);
    api("java.lang.StringBuffer", "<init>", into_base(1), SigAction::kStringBuilderInit);
    api("java.lang.StringBuffer", "append", chained(1), SigAction::kAppend);
    api("java.lang.StringBuffer", "toString", from_base(), SigAction::kToString);
    api("java.lang.String", "concat",
        {flow(R::base(), R::ret()), flow(R::arg(0), R::ret())}, SigAction::kStringConcat);
    api("java.lang.String", "valueOf", args_to_ret(1), SigAction::kStringValueOf);
    api("java.lang.String", "trim", from_base(), SigAction::kStringTrim);
    api("java.lang.String", "toLowerCase", from_base(), SigAction::kStringTrim);
    api("java.lang.String", "toUpperCase", from_base(), SigAction::kStringTrim);
    api("java.lang.String", "toString", from_base(), SigAction::kToString);
    api("java.lang.String", "format", args_to_ret(6), SigAction::kStringFormat);
    api("java.lang.String", "substring", from_base(), SigAction::kStringToUnknown);
    api("java.lang.String", "replace", from_base(), SigAction::kStringToUnknown);
    api("java.lang.Integer", "toString", args_to_ret(1), SigAction::kStringValueOf);
    api("java.lang.Integer", "parseInt", args_to_ret(1), SigAction::kStringToUnknown);
    api("java.net.URLEncoder", "encode", args_to_ret(1), SigAction::kUrlEncode);

    // ------------------------------------------------------------- JSON --
    for (const char* cls : {"org.json.JSONObject"}) {
        api(cls, "<init>", into_base(1), SigAction::kJsonNewObject);
        api(cls, "put", chained(2), SigAction::kJsonPut);
        api(cls, "get", from_base(), SigAction::kJsonGet);
        api(cls, "getString", from_base(), SigAction::kJsonGet);
        api(cls, "getInt", from_base(), SigAction::kJsonGet);
        api(cls, "getBoolean", from_base(), SigAction::kJsonGet);
        api(cls, "optString", from_base(), SigAction::kJsonGet);
        api(cls, "getJSONObject", from_base(), SigAction::kJsonGetObject);
        api(cls, "getJSONArray", from_base(), SigAction::kJsonGetArray);
        api(cls, "toString", from_base(), SigAction::kJsonToString);
    }
    api("org.json.JSONArray", "<init>", into_base(1), SigAction::kJsonNewArray);
    api("org.json.JSONArray", "put", chained(1), SigAction::kJsonArrayPut);
    api("org.json.JSONArray", "get", from_base(), SigAction::kJsonArrayGet);
    api("org.json.JSONArray", "getString", from_base(), SigAction::kJsonArrayGet);
    api("org.json.JSONArray", "getJSONObject", from_base(), SigAction::kJsonArrayGet);
    api("org.json.JSONArray", "length", from_base(), SigAction::kJsonArrayLength);
    api("com.google.gson.Gson", "<init>", {}, SigAction::kNone);
    api("com.google.gson.Gson", "fromJson", args_to_ret(1), SigAction::kGsonFromJson);
    api("com.google.gson.Gson", "toJson", args_to_ret(1), SigAction::kGsonToJson);
    api("com.fasterxml.jackson.databind.ObjectMapper", "readValue", args_to_ret(1),
        SigAction::kGsonFromJson);
    api("com.fasterxml.jackson.databind.ObjectMapper", "writeValueAsString",
        args_to_ret(1), SigAction::kGsonToJson);

    // -------------------------------------------------------------- XML --
    api("javax.xml.parsers.DocumentBuilder", "parse", args_to_ret(1), SigAction::kXmlParse);
    api("org.w3c.dom.Document", "getElementsByTagName", from_base(),
        SigAction::kXmlGetElement);
    api("org.w3c.dom.Element", "getElementsByTagName", from_base(),
        SigAction::kXmlGetElement);
    api("org.w3c.dom.NodeList", "item", from_base(), SigAction::kListGet);
    api("org.w3c.dom.Element", "getAttribute", from_base(), SigAction::kXmlGetAttribute);
    api("org.w3c.dom.Element", "getTextContent", from_base(), SigAction::kXmlGetText);

    // -------------------------------------------------- org.apache.http --
    const char* kApacheRequests[][2] = {{"HttpGet", "GET"},
                                        {"HttpPost", "POST"},
                                        {"HttpPut", "PUT"},
                                        {"HttpDelete", "DELETE"}};
    for (const auto& [short_name, verb] : kApacheRequests) {
        std::string cls = std::string("org.apache.http.client.methods.") + short_name;
        ApiModel init;
        init.cls = cls;
        init.method = "<init>";
        init.flows = into_base(1);
        init.action = SigAction::kHttpRequestInit;
        init.http_method = verb;
        m.register_api(std::move(init));
        api(cls, "setEntity", into_base(1), SigAction::kHttpSetEntity);
        api(cls, "setHeader", into_base(2), SigAction::kHttpSetHeader);
        api(cls, "addHeader", into_base(2), SigAction::kHttpSetHeader);
    }
    api("org.apache.http.entity.StringEntity", "<init>", into_base(1),
        SigAction::kStringEntityInit);
    api("org.apache.http.client.entity.UrlEncodedFormEntity", "<init>", into_base(1),
        SigAction::kFormEntityInit);
    api("org.apache.http.message.BasicNameValuePair", "<init>", into_base(2),
        SigAction::kNameValuePairInit);
    api("org.apache.http.HttpResponse", "getEntity", from_base(), SigAction::kGetEntity);
    api("org.apache.http.HttpEntity", "getContent", from_base(), SigAction::kGetContent);
    api("org.apache.http.util.EntityUtils", "toString", args_to_ret(1),
        SigAction::kEntityToString);
    api("org.apache.http.StatusLine", "getStatusCode", from_base(), SigAction::kNone);
    api("org.apache.http.HttpResponse", "getStatusLine", from_base(), SigAction::kNone);

    // ------------------------------------------------------ java.net/io --
    api("java.net.URL", "<init>", into_base(1), SigAction::kUrlInit);
    api("java.net.URL", "openConnection", from_base(), SigAction::kOpenConnection);
    api("java.net.HttpURLConnection", "setRequestMethod", into_base(1),
        SigAction::kSetRequestMethod);
    api("java.net.HttpURLConnection", "setRequestProperty", into_base(2),
        SigAction::kHttpSetHeader);
    api("java.net.HttpURLConnection", "getOutputStream", from_base(),
        SigAction::kGetOutputStream);
    api("java.io.OutputStream", "write", into_base(1), SigAction::kStreamWrite);
    api("java.io.OutputStreamWriter", "write", into_base(1), SigAction::kStreamWrite);
    api("java.io.InputStreamReader", "<init>", into_base(1), SigAction::kNone);
    api("java.io.BufferedReader", "<init>", into_base(1), SigAction::kNone);
    api("java.io.BufferedReader", "readLine", from_base(), SigAction::kReadLine);

    // ----------------------------------------------------------- okhttp --
    api("okhttp3.Request$Builder", "<init>", {}, SigAction::kOkRequestBuilderInit);
    api("okhttp3.Request$Builder", "url", chained(1), SigAction::kOkUrl);
    api("okhttp3.Request$Builder", "header", chained(2), SigAction::kOkHeader);
    api("okhttp3.Request$Builder", "addHeader", chained(2), SigAction::kOkHeader);
    api("okhttp3.Request$Builder", "get", chained(0), SigAction::kOkMethod);
    api("okhttp3.Request$Builder", "post", chained(1), SigAction::kOkMethod);
    api("okhttp3.Request$Builder", "put", chained(1), SigAction::kOkMethod);
    api("okhttp3.Request$Builder", "delete", chained(0), SigAction::kOkMethod);
    api("okhttp3.Request$Builder", "build", from_base(), SigAction::kOkBuild);
    api("okhttp3.RequestBody", "create", args_to_ret(2), SigAction::kStringEntityInit);
    api("okhttp3.OkHttpClient", "newCall", args_to_ret(1), SigAction::kOkNewCall);
    api("okhttp3.Response", "body", from_base(), SigAction::kGetEntity);
    api("okhttp3.ResponseBody", "string", from_base(), SigAction::kOkBodyString);

    // ----------------------------------------------------------- volley --
    api("com.android.volley.toolbox.Volley", "newRequestQueue", {}, SigAction::kNone);
    api("com.android.volley.toolbox.StringRequest", "<init>",
        {flow(R::arg(1), R::base())}, SigAction::kVolleyRequestInit);
    api("com.android.volley.toolbox.JsonObjectRequest", "<init>",
        {flow(R::arg(1), R::base()), flow(R::arg(2), R::base())},
        SigAction::kVolleyRequestInit);
    api("com.android.volley.RequestQueue", "add", into_base(1), SigAction::kVolleyAdd);

    // ------------------------------------------------------- containers --
    for (const char* cls : {"java.util.ArrayList", "java.util.LinkedList", "java.util.List"}) {
        api(cls, "<init>", {}, SigAction::kListInit);
        api(cls, "add", into_base(1), SigAction::kListAdd);
        api(cls, "get", from_base(), SigAction::kListGet);
        api(cls, "size", from_base(), SigAction::kNone);
    }
    for (const char* cls : {"java.util.HashMap", "java.util.Map"}) {
        api(cls, "<init>", {}, SigAction::kMapInit);
        api(cls, "put", into_base(2), SigAction::kMapPut);
        api(cls, "get", from_base(), SigAction::kMapGet);
    }

    // -------------------------------------------------- android platform --
    {
        ApiModel res;
        res.cls = "android.content.res.Resources";
        res.method = "getString";
        res.action = SigAction::kResourceGetString;
        res.source = SourceKind::kResource;
        m.register_api(std::move(res));
    }
    api("android.database.sqlite.SQLiteDatabase", "insert", into_base(3),
        SigAction::kDbInsert);
    api("android.database.sqlite.SQLiteDatabase", "update", into_base(4),
        SigAction::kDbUpdate);
    api("android.database.sqlite.SQLiteDatabase", "query", from_base(), SigAction::kDbQuery);
    api("android.database.Cursor", "getString", from_base(), SigAction::kCursorGetString);
    api("android.database.Cursor", "moveToNext", from_base(), SigAction::kNone);
    api("android.content.ContentValues", "<init>", {}, SigAction::kContentValuesInit);
    api("android.content.ContentValues", "put", into_base(2), SigAction::kContentValuesPut);
    {
        ApiModel prefs;
        prefs.cls = "android.content.SharedPreferences";
        prefs.method = "getString";
        prefs.flows = from_base();
        prefs.action = SigAction::kPrefsGetString;
        prefs.source = SourceKind::kPrefs;
        m.register_api(std::move(prefs));
    }
    api("android.content.SharedPreferences$Editor", "putString", into_base(2),
        SigAction::kPrefsPutString);
    api("android.content.Intent", "putExtra", into_base(2), SigAction::kIntentPutExtra);
    {
        ApiModel media;
        media.cls = "android.media.MediaPlayer";
        media.method = "setDataSource";
        media.flows = into_base(1);
        media.action = SigAction::kMediaSetDataSource;
        media.consumer = ConsumerKind::kMediaPlayer;
        m.register_api(std::move(media));
    }
    {
        ApiModel mic;
        mic.cls = "android.media.AudioRecord";
        mic.method = "read";
        mic.flows = from_base();
        mic.action = SigAction::kMicRead;
        mic.source = SourceKind::kMicrophone;
        m.register_api(std::move(mic));
    }
    for (const char* getter : {"getLatitude", "getLongitude"}) {
        ApiModel loc;
        loc.cls = "android.location.Location";
        loc.method = getter;
        loc.flows = from_base();
        loc.action = SigAction::kLocationGet;
        loc.source = SourceKind::kLocation;
        m.register_api(std::move(loc));
    }
    {
        ApiModel input;
        input.cls = "android.widget.EditText";
        input.method = "getText";
        input.flows = from_base();
        input.action = SigAction::kUserInput;
        input.source = SourceKind::kUserInput;
        m.register_api(std::move(input));
    }

    // ------------------------------------------------ raw sockets (§4) --
    // The paper lists direct java.net.Socket use as unsupported but notes it
    // "can be handled by modeling socket APIs because Extractocol already
    // parses text-based protocols" — this is that extension.
    api("java.net.Socket", "<init>", into_base(2), SigAction::kSocketInit);
    api("java.net.Socket", "getOutputStream", from_base(), SigAction::kGetOutputStream);

    // ------------------------------------------------ demarcation points --
    auto dp_sync = [&m](std::string cls, std::string method, Role request, Role response,
                        std::string library) {
        DemarcationSpec spec;
        spec.cls = std::move(cls);
        spec.method = std::move(method);
        spec.request = request;
        spec.response = response;
        spec.library = std::move(library);
        m.register_demarcation(std::move(spec));
    };
    auto dp_async = [&m](std::string cls, std::string method, std::optional<Role> request,
                         CallbackRoute route, std::string library) {
        DemarcationSpec spec;
        spec.cls = std::move(cls);
        spec.method = std::move(method);
        spec.request = request;
        spec.response_callback = route;
        spec.library = std::move(library);
        m.register_demarcation(std::move(spec));
    };
    auto dp_request_only = [&m](std::string cls, std::string method, Role request,
                                std::string library) {
        DemarcationSpec spec;
        spec.cls = std::move(cls);
        spec.method = std::move(method);
        spec.request = request;
        spec.library = std::move(library);
        m.register_demarcation(std::move(spec));
    };

    // org.apache.http — execute on the interface and common impls.
    for (const char* cls :
         {"org.apache.http.client.HttpClient", "org.apache.http.impl.client.DefaultHttpClient",
          "android.net.http.AndroidHttpClient"}) {
        dp_sync(cls, "execute", Role::arg(0), Role::ret(), "org.apache.http");
    }
    // java.net.
    dp_sync("java.net.HttpURLConnection", "getInputStream", Role::base(), Role::ret(),
            "java.net");
    dp_sync("java.net.URL", "openStream", Role::base(), Role::ret(), "java.net");
    dp_sync("java.net.Socket", "getInputStream", Role::base(), Role::ret(),
            "java.net.socket");
    // okhttp3.
    dp_sync("okhttp3.Call", "execute", Role::base(), Role::ret(), "okhttp3");
    dp_async("okhttp3.Call", "enqueue", Role::base(), CallbackRoute{0, "onResponse", 1},
             "okhttp3");
    // volley: the request constructor carries both the URL (backward) and the
    // response listener (forward).
    dp_async("com.android.volley.toolbox.StringRequest", "<init>", Role::base(),
             CallbackRoute{2, "onResponse", 0}, "volley");
    dp_async("com.android.volley.toolbox.JsonObjectRequest", "<init>", Role::base(),
             CallbackRoute{3, "onResponse", 0}, "volley");
    // retrofit2.
    dp_sync("retrofit2.Call", "execute", Role::base(), Role::ret(), "retrofit2");
    dp_async("retrofit2.Call", "enqueue", Role::base(), CallbackRoute{0, "onResponse", 1},
             "retrofit2");
    // loopj async http client (string-URL style).
    dp_async("com.loopj.android.http.AsyncHttpClient", "get", Role::arg(0),
             CallbackRoute{1, "onSuccess", 0}, "loopj");
    dp_async("com.loopj.android.http.AsyncHttpClient", "post", Role::arg(0),
             CallbackRoute{1, "onSuccess", 0}, "loopj");
    // android.media / image loading: URI-consuming GET generators.
    dp_request_only("android.media.MediaPlayer", "setDataSource", Role::arg(0),
                    "android.media");
    dp_request_only("com.squareup.picasso.Picasso", "load", Role::arg(0), "picasso");

    return m;
}

}  // namespace extractocol::semantics
