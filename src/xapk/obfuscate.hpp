// ProGuard-like identifier renamer. Renames application classes, methods,
// fields, and locals to short meaningless names (a, b, ..., aa, ab ...)
// while leaving library (phantom) API names untouched — the common
// obfuscation shape §3.4 describes ("many real-world apps do not obfuscate
// library codes, even when their own code is obfuscated").
//
// Analysis results must be invariant under this transformation (§5.1: "we
// obfuscate their APKs using ProGuard and verify that the same results hold");
// the tests assert exactly that.
#pragma once

#include <string>
#include <unordered_map>

#include "xir/ir.hpp"

namespace extractocol::xapk {

struct ObfuscationMap {
    std::unordered_map<std::string, std::string> classes;  // old fqcn -> new
    std::unordered_map<std::string, std::string> methods;  // "Cls.method" (old) -> new name
    std::unordered_map<std::string, std::string> fields;   // "Cls.field" (old) -> new name
};

struct ObfuscateOptions {
    /// Also rename library/phantom classes referenced by the app (tests the
    /// de-obfuscation path; default off, the common real-world case).
    bool rename_libraries = false;
    /// Seed for deterministic name assignment.
    std::uint64_t seed = 0x5eed;
};

/// Returns an obfuscated deep copy of `program` plus the rename map applied.
/// Event registrations and resources are updated consistently.
std::pair<xir::Program, ObfuscationMap> obfuscate(const xir::Program& program,
                                                  const ObfuscateOptions& options = {});

}  // namespace extractocol::xapk
