#include "xapk/obfuscate.hpp"

#include <map>
#include <set>

#include "support/strings.hpp"

namespace extractocol::xapk {

using namespace xir;

namespace {

/// a, b, ..., z, aa, ab, ... deterministic short-name sequence.
std::string short_name(std::size_t index) {
    std::string out;
    do {
        out.insert(out.begin(), static_cast<char>('a' + index % 26));
        index = index / 26;
    } while (index-- > 0);
    return out;
}

bool is_primitive(const Type& t) {
    return t == "int" || t == "long" || t == "boolean" || t == "double" || t == "void" ||
           t == "float" || t == "byte" || t == "char" || t == "short";
}

std::string strip_array(const Type& t, std::size_t* dims) {
    std::string base = t;
    *dims = 0;
    while (strings::ends_with(base, "[]")) {
        base.resize(base.size() - 2);
        ++(*dims);
    }
    return base;
}

class Renamer {
public:
    Renamer(const Program& original, const ObfuscateOptions& options)
        : original_(&original), options_(options) {
        build_class_map();
        build_member_maps();
    }

    ObfuscationMap take_map() { return std::move(map_); }

    Program apply() {
        Program out;
        out.app_name = original_->app_name;
        out.resources = original_->resources;
        for (const auto& cls : original_->classes) out.classes.push_back(rename_class(cls));
        for (const auto& event : original_->events) {
            EventRegistration renamed = event;
            renamed.handler.class_name = map_class(event.handler.class_name);
            renamed.handler.method_name =
                map_method(event.handler.class_name, event.handler.method_name);
            out.events.push_back(std::move(renamed));
        }
        out.reindex();
        return out;
    }

private:
    void build_class_map() {
        std::size_t next = 0;
        for (const auto& cls : original_->classes) {
            map_.classes[cls.name] = "o." + short_name(next++);
        }
        if (options_.rename_libraries) {
            // Collect every referenced phantom class and rename it too.
            std::set<std::string> phantoms;
            auto note = [&](const Type& t) {
                std::size_t dims = 0;
                std::string base = strip_array(t, &dims);
                if (!is_primitive(base) && !original_->find_class(base)) {
                    phantoms.insert(base);
                }
            };
            for (const Method* m : original_->method_table()) {
                for (const auto& local : m->locals) note(local.type);
                note(m->return_type);
                for (const auto& block : m->blocks) {
                    for (const auto& stmt : block.statements) {
                        if (const auto* call = std::get_if<Invoke>(&stmt)) {
                            note(call->callee.class_name);
                        } else if (const auto* alloc = std::get_if<NewObject>(&stmt)) {
                            note(alloc->class_name);
                        } else if (const auto* load = std::get_if<LoadStatic>(&stmt)) {
                            note(load->class_name);
                        } else if (const auto* store = std::get_if<StoreStatic>(&stmt)) {
                            note(store->class_name);
                        }
                    }
                }
            }
            std::size_t lib_next = 0;
            for (const auto& name : phantoms) {
                map_.classes[name] = "l." + short_name(lib_next++);
            }
        }
    }

    void build_member_maps() {
        for (const auto& cls : original_->classes) {
            std::size_t next_method = 0;
            for (const auto& method : cls.methods) {
                map_.methods[cls.name + "." + method.name] = short_name(next_method++);
            }
            std::size_t next_field = 0;
            for (const auto& field : cls.fields) {
                map_.fields[cls.name + "." + field.name] = short_name(next_field++);
            }
        }
        if (options_.rename_libraries) {
            // Rename methods of renamed phantom classes too (full ProGuard-on-
            // bundled-library shape). Collect invoked names per phantom class.
            std::map<std::string, std::set<std::string>> phantom_methods;
            for (const Method* m : original_->method_table()) {
                for (const auto& block : m->blocks) {
                    for (const auto& stmt : block.statements) {
                        const auto* call = std::get_if<Invoke>(&stmt);
                        if (!call) continue;
                        const std::string& cls = call->callee.class_name;
                        if (!original_->find_class(cls) && map_.classes.count(cls) > 0) {
                            phantom_methods[cls].insert(call->callee.method_name);
                        }
                    }
                }
            }
            for (const auto& [cls, names] : phantom_methods) {
                std::size_t next = 0;
                for (const auto& name : names) {
                    map_.methods[cls + "." + name] = short_name(next++);
                }
            }
        }
    }

    [[nodiscard]] std::string map_class(const std::string& name) const {
        std::size_t dims = 0;
        std::string base = name;
        // Handle array types transparently.
        while (strings::ends_with(base, "[]")) {
            base.resize(base.size() - 2);
            ++dims;
        }
        auto it = map_.classes.find(base);
        std::string mapped = it == map_.classes.end() ? base : it->second;
        for (std::size_t i = 0; i < dims; ++i) mapped += "[]";
        return mapped;
    }

    /// Maps a method name given the *static* callee class: walks the app
    /// hierarchy to find the declaring class, mirroring how ProGuard keeps
    /// virtual-dispatch names consistent.
    [[nodiscard]] std::string map_method(const std::string& class_name,
                                         const std::string& method_name) const {
        std::string current = class_name;
        while (!current.empty()) {
            auto it = map_.methods.find(current + "." + method_name);
            if (it != map_.methods.end()) return it->second;
            const Class* cls = original_->find_class(current);
            if (!cls) break;
            current = cls->super;
        }
        return method_name;  // library method: untouched (unless lib-renamed below)
    }

    [[nodiscard]] std::string map_field(const std::string& class_name,
                                        const std::string& field_name) const {
        std::string current = class_name;
        while (!current.empty()) {
            auto it = map_.fields.find(current + "." + field_name);
            if (it != map_.fields.end()) return it->second;
            const Class* cls = original_->find_class(current);
            if (!cls) break;
            current = cls->super;
        }
        return field_name;
    }

    Class rename_class(const Class& cls) {
        Class out;
        out.name = map_class(cls.name);
        out.super = map_class(cls.super);
        for (const auto& field : cls.fields) {
            out.fields.push_back({map_field(cls.name, field.name), map_class(field.type)});
        }
        for (const auto& method : cls.methods) {
            out.methods.push_back(rename_method(cls, method));
        }
        return out;
    }

    Method rename_method(const Class& cls, const Method& method) {
        Method out;
        out.name = map_method(cls.name, method.name);
        out.class_name = map_class(cls.name);
        out.is_static = method.is_static;
        out.return_type = map_class(method.return_type);
        out.param_count = method.param_count;
        for (std::size_t i = 0; i < method.locals.size(); ++i) {
            out.locals.push_back(
                {"v" + std::to_string(i), map_class(method.locals[i].type)});
        }
        for (const auto& block : method.blocks) {
            BasicBlock renamed;
            for (const auto& stmt : block.statements) {
                renamed.statements.push_back(rename_statement(method, stmt));
            }
            out.blocks.push_back(std::move(renamed));
        }
        return out;
    }

    Statement rename_statement(const Method& method, const Statement& stmt) {
        Statement out = stmt;
        if (auto* alloc = std::get_if<NewObject>(&out)) {
            alloc->class_name = map_class(alloc->class_name);
        } else if (auto* load = std::get_if<LoadField>(&out)) {
            load->field = map_field(method.locals[load->base].type, load->field);
        } else if (auto* store = std::get_if<StoreField>(&out)) {
            store->field = map_field(method.locals[store->base].type, store->field);
        } else if (auto* load_s = std::get_if<LoadStatic>(&out)) {
            load_s->field = map_field(load_s->class_name, load_s->field);
            load_s->class_name = map_class(load_s->class_name);
        } else if (auto* store_s = std::get_if<StoreStatic>(&out)) {
            store_s->field = map_field(store_s->class_name, store_s->field);
            store_s->class_name = map_class(store_s->class_name);
        } else if (auto* call = std::get_if<Invoke>(&out)) {
            // Resolve the declaring class before renaming so inherited
            // methods keep one name. Virtual calls dispatch on the receiver's
            // declared type in our call graph; renaming by static callee
            // class is consistent with that.
            std::string target_class = call->callee.class_name;
            if (call->kind == InvokeKind::kVirtual && call->base) {
                const auto& receiver_type = method.locals[*call->base].type;
                if (original_->find_class(receiver_type)) target_class = receiver_type;
            }
            call->callee.method_name = map_method(target_class, call->callee.method_name);
            call->callee.class_name = map_class(call->callee.class_name);
        }
        return out;
    }

    const Program* original_;
    ObfuscateOptions options_;
    ObfuscationMap map_;
};

}  // namespace

std::pair<Program, ObfuscationMap> obfuscate(const Program& program,
                                             const ObfuscateOptions& options) {
    Renamer renamer(program, options);
    Program out = renamer.apply();
    return {std::move(out), renamer.take_map()};
}

}  // namespace extractocol::xapk
