// .xapk — the on-disk container standing in for an APK. It packages the
// app's IR "bytecode", manifest metadata (event registrations), and the
// resource table, in a line-oriented textual format with a full round-trip
// guarantee (write ∘ parse = identity). Extractocol's pipeline takes one of
// these as its *only* input, mirroring the paper's binary-only setting.
#pragma once

#include <string>
#include <string_view>

#include "support/result.hpp"
#include "xir/ir.hpp"

namespace extractocol::xapk {

/// Serializes a program to the .xapk text format.
std::string write_xapk(const xir::Program& program);

/// Parses a .xapk document; the returned program is reindexed and verified.
Result<xir::Program> parse_xapk(std::string_view input);

}  // namespace extractocol::xapk
