#include "xapk/serialize.hpp"

#include <charconv>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/strings.hpp"
#include "xir/verify.hpp"

namespace extractocol::xapk {

using namespace xir;

// Statement mnemonics, one line each, whitespace-separated tokens; strings
// are double-quoted with backslash escapes. Operand forms:
//   $N        local
//   "..."     string constant
//   123       int constant
//   d:1.5     double constant
//   true/false/null
// Optional destinations use "_" when absent.

namespace {

std::string quote(std::string_view s) {
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default: out.push_back(c);
        }
    }
    out.push_back('"');
    return out;
}

std::string operand_text(const Operand& op) {
    if (op.is_local()) return "$" + std::to_string(op.local);
    const Constant& c = op.constant;
    switch (c.kind) {
        case Constant::Kind::kNull: return "null";
        case Constant::Kind::kBool: return c.bool_value ? "true" : "false";
        case Constant::Kind::kInt: return std::to_string(c.int_value);
        case Constant::Kind::kDouble: {
            char buf[40];
            std::snprintf(buf, sizeof buf, "d:%.17g", c.double_value);
            return buf;
        }
        case Constant::Kind::kString: return quote(c.string_value);
    }
    return "null";
}

const char* cmp_text(CmpOp op) {
    switch (op) {
        case CmpOp::kEq: return "eq";
        case CmpOp::kNe: return "ne";
        case CmpOp::kLt: return "lt";
        case CmpOp::kLe: return "le";
        case CmpOp::kGt: return "gt";
        case CmpOp::kGe: return "ge";
    }
    return "eq";
}

const char* bin_text(BinaryOp::Op op) {
    switch (op) {
        case BinaryOp::Op::kAdd: return "add";
        case BinaryOp::Op::kSub: return "sub";
        case BinaryOp::Op::kMul: return "mul";
        case BinaryOp::Op::kDiv: return "div";
        case BinaryOp::Op::kConcat: return "cat";
    }
    return "add";
}

const char* invoke_kind_text(InvokeKind kind) {
    switch (kind) {
        case InvokeKind::kVirtual: return "virtual";
        case InvokeKind::kStatic: return "static";
        case InvokeKind::kSpecial: return "special";
    }
    return "virtual";
}

void write_statement(std::ostream& out, const Statement& stmt) {
    std::visit(
        [&](const auto& s) {
            using T = std::decay_t<decltype(s)>;
            if constexpr (std::is_same_v<T, Nop>) {
                out << "nop";
            } else if constexpr (std::is_same_v<T, AssignConst>) {
                out << "const $" << s.dst << " " << operand_text(Operand(s.value));
            } else if constexpr (std::is_same_v<T, AssignCopy>) {
                out << "copy $" << s.dst << " $" << s.src;
            } else if constexpr (std::is_same_v<T, NewObject>) {
                out << "new $" << s.dst << " " << s.class_name;
            } else if constexpr (std::is_same_v<T, LoadField>) {
                out << "getf $" << s.dst << " $" << s.base << " " << s.field;
            } else if constexpr (std::is_same_v<T, StoreField>) {
                out << "putf $" << s.base << " " << s.field << " " << operand_text(s.src);
            } else if constexpr (std::is_same_v<T, LoadStatic>) {
                out << "gets $" << s.dst << " " << s.class_name << " " << s.field;
            } else if constexpr (std::is_same_v<T, StoreStatic>) {
                out << "puts " << s.class_name << " " << s.field << " "
                    << operand_text(s.src);
            } else if constexpr (std::is_same_v<T, LoadArray>) {
                out << "geta $" << s.dst << " $" << s.array << " " << operand_text(s.index);
            } else if constexpr (std::is_same_v<T, StoreArray>) {
                out << "puta $" << s.array << " " << operand_text(s.index) << " "
                    << operand_text(s.src);
            } else if constexpr (std::is_same_v<T, BinaryOp>) {
                out << "bin $" << s.dst << " " << bin_text(s.op) << " "
                    << operand_text(s.lhs) << " " << operand_text(s.rhs);
            } else if constexpr (std::is_same_v<T, Invoke>) {
                out << "call ";
                if (s.dst) out << "$" << *s.dst;
                else out << "_";
                out << " " << invoke_kind_text(s.kind) << " " << s.callee.qualified() << " ";
                if (s.base) out << "$" << *s.base;
                else out << "_";
                for (const auto& a : s.args) out << " " << operand_text(a);
            } else if constexpr (std::is_same_v<T, If>) {
                out << "if " << operand_text(s.lhs) << " " << cmp_text(s.op) << " "
                    << operand_text(s.rhs) << " b" << s.then_block << " b" << s.else_block;
            } else if constexpr (std::is_same_v<T, Goto>) {
                out << "goto b" << s.target;
            } else if constexpr (std::is_same_v<T, Return>) {
                out << "ret " << (s.value ? operand_text(*s.value) : std::string("_"));
            }
        },
        stmt);
}

}  // namespace

std::string write_xapk(const Program& program) {
    std::ostringstream out;
    out << "xapk 1\n";
    out << "app " << quote(program.app_name) << "\n";
    for (const auto& [id, value] : program.resources) {
        out << "resource " << id << " " << quote(value) << "\n";
    }
    for (const auto& event : program.events) {
        out << "event " << event_kind_name(event.kind) << " "
            << event.handler.qualified() << " " << quote(event.label) << "\n";
    }
    for (const auto& cls : program.classes) {
        out << "class " << cls.name;
        if (!cls.super.empty()) out << " extends " << cls.super;
        out << "\n";
        for (const auto& field : cls.fields) {
            out << "  field " << field.name << " " << field.type << "\n";
        }
        for (const auto& method : cls.methods) {
            out << "  method " << method.name << " " << (method.is_static ? 1 : 0) << " "
                << method.param_count << " " << method.return_type << "\n";
            for (const auto& local : method.locals) {
                out << "    local " << local.name << " " << local.type << "\n";
            }
            for (BlockId b = 0; b < method.blocks.size(); ++b) {
                out << "    block " << b << "\n";
                for (const auto& stmt : method.blocks[b].statements) {
                    out << "      ";
                    write_statement(out, stmt);
                    out << "\n";
                }
            }
        }
    }
    return out.str();
}

// ----------------------------------------------------------------- parse --

namespace {

/// Splits a line into tokens, treating double-quoted runs (with escapes) as
/// single tokens whose quotes are preserved for type detection.
Result<std::vector<std::string>> tokenize(std::string_view line) {
    std::vector<std::string> tokens;
    std::size_t i = 0;
    while (i < line.size()) {
        if (line[i] == ' ' || line[i] == '\t') {
            ++i;
            continue;
        }
        if (line[i] == '"') {
            std::string token = "\"";
            ++i;
            while (i < line.size() && line[i] != '"') {
                if (line[i] == '\\' && i + 1 < line.size()) {
                    char e = line[i + 1];
                    switch (e) {
                        case 'n': token.push_back('\n'); break;
                        case 't': token.push_back('\t'); break;
                        case 'r': token.push_back('\r'); break;
                        default: token.push_back(e);
                    }
                    i += 2;
                } else {
                    token.push_back(line[i]);
                    ++i;
                }
            }
            if (i >= line.size()) return Error("unterminated string literal");
            ++i;  // closing quote
            token.push_back('"');
            tokens.push_back(std::move(token));
        } else {
            std::size_t start = i;
            while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
            tokens.emplace_back(line.substr(start, i - start));
        }
    }
    return tokens;
}

bool is_quoted(const std::string& token) {
    return token.size() >= 2 && token.front() == '"' && token.back() == '"';
}

std::string unquote(const std::string& token) {
    return token.substr(1, token.size() - 2);
}

Result<Operand> parse_operand(const std::string& token) {
    if (token.empty()) return Error("empty operand");
    if (token[0] == '$') {
        LocalId id = 0;
        auto [ptr, ec] = std::from_chars(token.data() + 1, token.data() + token.size(), id);
        if (ec != std::errc() || ptr != token.data() + token.size()) {
            return Error("bad local operand: " + token);
        }
        return Operand(id);
    }
    if (is_quoted(token)) return Operand(Constant::of_string(unquote(token)));
    if (token == "null") return Operand(Constant::null());
    if (token == "true") return Operand(Constant::of_bool(true));
    if (token == "false") return Operand(Constant::of_bool(false));
    if (strings::starts_with(token, "d:")) {
        double parsed = 0;
        auto [dptr, dec] =
            std::from_chars(token.data() + 2, token.data() + token.size(), parsed);
        if (dec != std::errc() || dptr != token.data() + token.size()) {
            return Error("bad double operand: " + token);
        }
        return Operand(Constant::of_double(parsed));
    }
    std::int64_t value = 0;
    auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec == std::errc() && ptr == token.data() + token.size()) {
        return Operand(Constant::of_int(value));
    }
    return Error("bad operand: " + token);
}

/// Guarded decimal parse for header fields (method param counts, block
/// indices): garbage and overflow become an Error instead of a std::stoul
/// throw escaping parse_xapk's Result contract.
Result<std::uint32_t> parse_u32(const std::string& token, const char* what) {
    std::uint32_t value = 0;
    auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
        return Error(std::string("bad ") + what + ": " + token);
    }
    return value;
}

Result<LocalId> parse_local(const std::string& token) {
    auto op = parse_operand(token);
    if (!op.ok()) return op.error();
    if (!op.value().is_local()) return Error("expected local, got " + token);
    return op.value().local;
}

Result<BlockId> parse_block_ref(const std::string& token) {
    if (token.size() < 2 || token[0] != 'b') return Error("bad block ref: " + token);
    BlockId id = 0;
    auto [ptr, ec] = std::from_chars(token.data() + 1, token.data() + token.size(), id);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
        return Error("bad block ref: " + token);
    }
    return id;
}

Result<CmpOp> parse_cmp(const std::string& token) {
    if (token == "eq") return CmpOp::kEq;
    if (token == "ne") return CmpOp::kNe;
    if (token == "lt") return CmpOp::kLt;
    if (token == "le") return CmpOp::kLe;
    if (token == "gt") return CmpOp::kGt;
    if (token == "ge") return CmpOp::kGe;
    return Error("bad cmp op: " + token);
}

Result<BinaryOp::Op> parse_bin(const std::string& token) {
    if (token == "add") return BinaryOp::Op::kAdd;
    if (token == "sub") return BinaryOp::Op::kSub;
    if (token == "mul") return BinaryOp::Op::kMul;
    if (token == "div") return BinaryOp::Op::kDiv;
    if (token == "cat") return BinaryOp::Op::kConcat;
    return Error("bad binary op: " + token);
}

Result<InvokeKind> parse_invoke_kind(const std::string& token) {
    if (token == "virtual") return InvokeKind::kVirtual;
    if (token == "static") return InvokeKind::kStatic;
    if (token == "special") return InvokeKind::kSpecial;
    return Error("bad invoke kind: " + token);
}

MethodRef parse_method_ref(const std::string& qualified) {
    auto dot = qualified.rfind('.');
    if (dot == std::string::npos) return {"", qualified};
    return {qualified.substr(0, dot), qualified.substr(dot + 1)};
}

Result<Statement> parse_statement(const std::vector<std::string>& t) {
    const std::string& op = t[0];
    auto need = [&](std::size_t n) -> Status {
        if (t.size() < n) return Error("statement '" + op + "' needs more tokens");
        return Status::success();
    };

    if (op == "nop") return Statement(Nop{});
    if (op == "const") {
        if (auto s = need(3); !s.ok()) return s.error();
        auto dst = parse_local(t[1]);
        if (!dst.ok()) return dst.error();
        auto value = parse_operand(t[2]);
        if (!value.ok()) return value.error();
        if (value.value().is_local()) return Error("const with local operand");
        return Statement(AssignConst{dst.value(), value.value().constant});
    }
    if (op == "copy") {
        if (auto s = need(3); !s.ok()) return s.error();
        auto dst = parse_local(t[1]);
        auto src = parse_local(t[2]);
        if (!dst.ok()) return dst.error();
        if (!src.ok()) return src.error();
        return Statement(AssignCopy{dst.value(), src.value()});
    }
    if (op == "new") {
        if (auto s = need(3); !s.ok()) return s.error();
        auto dst = parse_local(t[1]);
        if (!dst.ok()) return dst.error();
        return Statement(NewObject{dst.value(), t[2]});
    }
    if (op == "getf") {
        if (auto s = need(4); !s.ok()) return s.error();
        auto dst = parse_local(t[1]);
        auto base = parse_local(t[2]);
        if (!dst.ok()) return dst.error();
        if (!base.ok()) return base.error();
        return Statement(LoadField{dst.value(), base.value(), t[3]});
    }
    if (op == "putf") {
        if (auto s = need(4); !s.ok()) return s.error();
        auto base = parse_local(t[1]);
        if (!base.ok()) return base.error();
        auto src = parse_operand(t[3]);
        if (!src.ok()) return src.error();
        return Statement(StoreField{base.value(), t[2], src.value()});
    }
    if (op == "gets") {
        if (auto s = need(4); !s.ok()) return s.error();
        auto dst = parse_local(t[1]);
        if (!dst.ok()) return dst.error();
        return Statement(LoadStatic{dst.value(), t[2], t[3]});
    }
    if (op == "puts") {
        if (auto s = need(4); !s.ok()) return s.error();
        auto src = parse_operand(t[3]);
        if (!src.ok()) return src.error();
        return Statement(StoreStatic{t[1], t[2], src.value()});
    }
    if (op == "geta") {
        if (auto s = need(4); !s.ok()) return s.error();
        auto dst = parse_local(t[1]);
        auto array = parse_local(t[2]);
        if (!dst.ok()) return dst.error();
        if (!array.ok()) return array.error();
        auto index = parse_operand(t[3]);
        if (!index.ok()) return index.error();
        return Statement(LoadArray{dst.value(), array.value(), index.value()});
    }
    if (op == "puta") {
        if (auto s = need(4); !s.ok()) return s.error();
        auto array = parse_local(t[1]);
        if (!array.ok()) return array.error();
        auto index = parse_operand(t[2]);
        auto src = parse_operand(t[3]);
        if (!index.ok()) return index.error();
        if (!src.ok()) return src.error();
        return Statement(StoreArray{array.value(), index.value(), src.value()});
    }
    if (op == "bin") {
        if (auto s = need(5); !s.ok()) return s.error();
        auto dst = parse_local(t[1]);
        if (!dst.ok()) return dst.error();
        auto kind = parse_bin(t[2]);
        if (!kind.ok()) return kind.error();
        auto lhs = parse_operand(t[3]);
        auto rhs = parse_operand(t[4]);
        if (!lhs.ok()) return lhs.error();
        if (!rhs.ok()) return rhs.error();
        return Statement(BinaryOp{dst.value(), kind.value(), lhs.value(), rhs.value()});
    }
    if (op == "call") {
        if (auto s = need(5); !s.ok()) return s.error();
        Invoke call;
        if (t[1] != "_") {
            auto dst = parse_local(t[1]);
            if (!dst.ok()) return dst.error();
            call.dst = dst.value();
        }
        auto kind = parse_invoke_kind(t[2]);
        if (!kind.ok()) return kind.error();
        call.kind = kind.value();
        call.callee = parse_method_ref(t[3]);
        if (t[4] != "_") {
            auto base = parse_local(t[4]);
            if (!base.ok()) return base.error();
            call.base = base.value();
        }
        for (std::size_t i = 5; i < t.size(); ++i) {
            auto arg = parse_operand(t[i]);
            if (!arg.ok()) return arg.error();
            call.args.push_back(arg.value());
        }
        return Statement(std::move(call));
    }
    if (op == "if") {
        if (auto s = need(6); !s.ok()) return s.error();
        auto lhs = parse_operand(t[1]);
        auto cmp = parse_cmp(t[2]);
        auto rhs = parse_operand(t[3]);
        auto then_block = parse_block_ref(t[4]);
        auto else_block = parse_block_ref(t[5]);
        if (!lhs.ok()) return lhs.error();
        if (!cmp.ok()) return cmp.error();
        if (!rhs.ok()) return rhs.error();
        if (!then_block.ok()) return then_block.error();
        if (!else_block.ok()) return else_block.error();
        return Statement(
            If{lhs.value(), cmp.value(), rhs.value(), then_block.value(), else_block.value()});
    }
    if (op == "goto") {
        if (auto s = need(2); !s.ok()) return s.error();
        auto target = parse_block_ref(t[1]);
        if (!target.ok()) return target.error();
        return Statement(Goto{target.value()});
    }
    if (op == "ret") {
        if (auto s = need(2); !s.ok()) return s.error();
        if (t[1] == "_") return Statement(Return{});
        auto value = parse_operand(t[1]);
        if (!value.ok()) return value.error();
        return Statement(Return{value.value()});
    }
    return Error("unknown statement mnemonic: " + op);
}

}  // namespace

Result<Program> parse_xapk(std::string_view input) {
    obs::Span span("xapk.parse_text", "xapk");
    obs::Counter& lines_parsed = obs::counter("xapk.lines_parsed");
    Program program;
    Class* current_class = nullptr;
    Method* current_method = nullptr;
    BasicBlock* current_block = nullptr;

    std::size_t line_number = 0;
    std::size_t pos = 0;
    while (pos <= input.size()) {
        std::size_t end = input.find('\n', pos);
        std::string_view raw =
            input.substr(pos, end == std::string_view::npos ? input.size() - pos : end - pos);
        pos = (end == std::string_view::npos) ? input.size() + 1 : end + 1;
        ++line_number;

        std::string_view line = strings::trim(raw);
        if (line.empty() || line[0] == '#') continue;
        auto tokens_result = tokenize(line);
        if (!tokens_result.ok()) {
            return tokens_result.error().with_context("line " + std::to_string(line_number));
        }
        const auto& t = tokens_result.value();
        if (t.empty()) continue;
        auto fail = [&](const std::string& why) -> Result<Program> {
            return Error("xapk line " + std::to_string(line_number) + ": " + why);
        };

        const std::string& keyword = t[0];
        if (keyword == "xapk") {
            if (t.size() != 2 || t[1] != "1") return fail("unsupported xapk version");
        } else if (keyword == "app") {
            if (t.size() != 2 || !is_quoted(t[1])) return fail("app needs quoted name");
            program.app_name = unquote(t[1]);
        } else if (keyword == "resource") {
            if (t.size() != 3 || !is_quoted(t[2])) return fail("resource id \"value\"");
            program.resources.emplace_back(t[1], unquote(t[2]));
        } else if (keyword == "event") {
            if (t.size() != 4 || !is_quoted(t[3])) return fail("event kind method \"label\"");
            auto kind = parse_event_kind(t[1]);
            if (!kind.ok()) return fail(kind.error().message);
            program.events.push_back({parse_method_ref(t[2]), kind.value(), unquote(t[3])});
        } else if (keyword == "class") {
            if (t.size() != 2 && !(t.size() == 4 && t[2] == "extends")) {
                return fail("class NAME [extends SUPER]");
            }
            Class cls;
            cls.name = t[1];
            if (t.size() == 4) cls.super = t[3];
            program.classes.push_back(std::move(cls));
            current_class = &program.classes.back();
            current_method = nullptr;
            current_block = nullptr;
        } else if (keyword == "field") {
            if (!current_class) return fail("field outside class");
            if (t.size() != 3) return fail("field NAME TYPE");
            current_class->fields.push_back({t[1], t[2]});
        } else if (keyword == "method") {
            if (!current_class) return fail("method outside class");
            if (t.size() != 5) return fail("method NAME STATIC PARAMS RET");
            Method method;
            method.name = t[1];
            method.class_name = current_class->name;
            method.is_static = t[2] == "1";
            auto params = parse_u32(t[3], "method param count");
            if (!params.ok()) return fail(params.error().message);
            method.param_count = params.value();
            method.return_type = t[4];
            current_class->methods.push_back(std::move(method));
            current_method = &current_class->methods.back();
            current_block = nullptr;
        } else if (keyword == "local") {
            if (!current_method) return fail("local outside method");
            if (t.size() != 3) return fail("local NAME TYPE");
            current_method->locals.push_back({t[1], t[2]});
        } else if (keyword == "block") {
            if (!current_method) return fail("block outside method");
            if (t.size() != 2) return fail("block INDEX");
            auto index = parse_u32(t[1], "block index");
            if (!index.ok()) return fail(index.error().message);
            if (index.value() != current_method->blocks.size()) {
                return fail("blocks must appear in order");
            }
            current_method->blocks.emplace_back();
            current_block = &current_method->blocks.back();
        } else {
            if (!current_block) return fail("statement outside block");
            auto stmt = parse_statement(t);
            if (!stmt.ok()) return fail(stmt.error().message);
            current_block->statements.push_back(std::move(stmt).take());
        }
    }

    program.reindex();
    if (auto status = xir::verify(program); !status.ok()) {
        return Error("parsed xapk failed verification: " + status.error().message);
    }
    lines_parsed.add(line_number);
    obs::counter("xapk.programs_parsed").add(1);
    span.finish();
    obs::histogram("xapk.parse_ms").observe(span.seconds() * 1000.0);
    return program;
}

}  // namespace extractocol::xapk
