// Network-aware program slicing (§3.1): finds demarcation points, derives
// the transaction set (one per DP site × calling context — the paper's
// disjoint sub-slices, Fig. 5), and computes request/response slices via
// bidirectional taint propagation, with object-aware augmentation and the
// async-event heuristic.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "semantics/model.hpp"
#include "taint/engine.hpp"
#include "xir/callgraph.hpp"
#include "xir/ir.hpp"

namespace extractocol::slicing {

/// One reconstructed transaction skeleton: a demarcation-point occurrence
/// reached through one calling context, with its slices.
struct SlicedTransaction {
    xir::StmtRef dp_site;
    const semantics::DemarcationSpec* dp = nullptr;
    std::vector<xir::CallEdge> context;
    /// Event that triggers this transaction (label of the context root).
    std::string trigger;
    xir::EventKind trigger_kind = xir::EventKind::kOnClick;

    std::set<xir::StmtRef> request_slice;
    std::set<xir::StmtRef> response_slice;
    /// request ∪ response ∪ object-aware augmentation; what the signature
    /// builder interprets.
    std::set<xir::StmtRef> combined_slice;

    /// Taint results kept for dependency analysis (globals reached, call
    /// events observed).
    taint::TaintResult request_taint;
    taint::TaintResult response_taint;
};

struct SlicerOptions {
    /// §3.4 async-event heuristic (cross-event flows through statics/db/
    /// prefs). The paper disables it for open-source apps (§5.1).
    bool async_heuristic = true;
    /// Cap on calling contexts explored per DP site.
    std::size_t max_contexts = 64;
    /// Async-chain depth (taint::EngineOptions::max_global_hops). The paper's
    /// implementation stops at one hop (§4); higher values implement its
    /// "multiple iterations" extension.
    unsigned max_async_hops = 1;
    /// Per-taint-run worklist cap (taint::EngineOptions::max_steps);
    /// 0 = unlimited.
    std::size_t max_taint_steps = 2'000'000;
};

class Slicer {
public:
    Slicer(const xir::Program& program, const semantics::SemanticModel& model,
           SlicerOptions options = {});

    /// All demarcation-point statements in the program.
    [[nodiscard]] std::vector<xir::StmtRef> demarcation_sites() const;

    /// Slices every transaction in the program.
    [[nodiscard]] std::vector<SlicedTransaction> slice_all();

    /// Slices one DP site (all contexts). When `steps_used` is non-null it
    /// receives the total taint-worklist iterations the site consumed (the
    /// deterministic cost the budget layer charges).
    [[nodiscard]] std::vector<SlicedTransaction> slice_site(
        const xir::StmtRef& site, std::size_t* steps_used = nullptr);

    [[nodiscard]] const xir::CallGraph& callgraph() const { return *callgraph_; }
    [[nodiscard]] const xir::Program& program() const { return *program_; }
    [[nodiscard]] taint::TaintEngine& engine() { return *engine_; }

    /// Fraction of all program statements covered by the union of all slices
    /// (the Fig. 3 "6.3% of all code" metric).
    [[nodiscard]] static double slice_fraction(const xir::Program& program,
                                               const std::vector<SlicedTransaction>& txns);

private:
    void resolve_trigger(SlicedTransaction& txn) const;
    std::set<xir::StmtRef> augment(const std::set<xir::StmtRef>& response_slice,
                                   std::size_t& steps_used);

    const xir::Program* program_;
    const semantics::SemanticModel* model_;
    SlicerOptions options_;
    std::unique_ptr<xir::CallGraph> callgraph_;
    std::unique_ptr<taint::TaintEngine> engine_;
};

}  // namespace extractocol::slicing
