#include "slicing/slicer.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "support/log.hpp"

namespace extractocol::slicing {

using namespace xir;
using semantics::DemarcationSpec;
using semantics::Role;
using taint::AccessPath;
using taint::Direction;
using taint::TaintSeed;

Slicer::Slicer(const Program& program, const semantics::SemanticModel& model,
               SlicerOptions options)
    : program_(&program), model_(&model), options_(options) {
    callgraph_ = std::make_unique<CallGraph>(program, model.callback_resolver());
    taint::EngineOptions engine_options;
    engine_options.cross_event_globals = options_.async_heuristic;
    engine_options.max_global_hops = options_.max_async_hops;
    engine_options.max_steps = options_.max_taint_steps;
    engine_ = std::make_unique<taint::TaintEngine>(program, *callgraph_, model,
                                                   engine_options);
}

std::vector<StmtRef> Slicer::demarcation_sites() const {
    std::vector<StmtRef> sites;
    const auto& methods = program_->method_table();
    for (std::uint32_t mi = 0; mi < methods.size(); ++mi) {
        const Method& method = *methods[mi];
        for (BlockId b = 0; b < method.blocks.size(); ++b) {
            const auto& stmts = method.blocks[b].statements;
            for (std::uint32_t i = 0; i < stmts.size(); ++i) {
                const auto* call = std::get_if<Invoke>(&stmts[i]);
                if (!call) continue;
                if (model_->demarcation(call->callee.class_name,
                                        call->callee.method_name)) {
                    sites.push_back({mi, b, i});
                }
            }
        }
    }
    return sites;
}

std::vector<SlicedTransaction> Slicer::slice_all() {
    std::vector<SlicedTransaction> out;
    for (const StmtRef& site : demarcation_sites()) {
        auto txns = slice_site(site);
        out.insert(out.end(), std::make_move_iterator(txns.begin()),
                   std::make_move_iterator(txns.end()));
    }
    return out;
}

std::vector<SlicedTransaction> Slicer::slice_site(const StmtRef& site,
                                                  std::size_t* steps_used) {
    std::size_t steps = 0;
    std::vector<SlicedTransaction> out;
    if (steps_used) *steps_used = 0;
    const auto* call = std::get_if<Invoke>(&program_->statement(site));
    if (!call) return out;
    const DemarcationSpec* dp =
        model_->demarcation(call->callee.class_name, call->callee.method_name);
    if (!dp) return out;

    obs::Span span("slicing.site", "slicing");
    obs::counter("slicer.dp_sites_sliced").add(1);

    // Attribution window for --profile: the taint engine charges its
    // worklist steps to this scope; the analyzer's sig stage opens a kSig
    // scope under the same key, so both stages land on one table row.
    std::string site_key;
    if (obs::Profiler::global().enabled()) {
        const Method& site_method = program_->method_at(site.method_index);
        site_key = obs::profile_site_key(
            program_->app_name,
            call->callee.class_name + "." + call->callee.method_name,
            site_method.class_name + "." + site_method.name, site.method_index,
            site.block, site.index);
    }
    obs::ProfileScope profile_scope(std::move(site_key), obs::ProfileScope::Stage::kSlice);

    // One transaction per acyclic calling context (disjoint sub-slices).
    auto contexts = callgraph_->contexts_reaching(site.method_index, 24,
                                                  options_.max_contexts);
    obs::counter("slicer.contexts").add(contexts.size());
    obs::ProfileScope::charge_contexts(contexts.size());

    // Request/response slices are computed once per DP site (taint is
    // context-insensitive); contexts split the site into transactions.
    std::set<StmtRef> request_slice;
    std::set<StmtRef> response_slice;
    taint::TaintResult request_taint;
    taint::TaintResult response_taint;

    // ---- backward: request slice ----
    std::vector<TaintSeed> request_seeds;
    if (dp->request) {
        switch (dp->request->pos) {
            case Role::Pos::kBase:
                if (call->base) {
                    request_seeds.push_back({site, AccessPath::of_local(*call->base)});
                }
                break;
            case Role::Pos::kArg: {
                auto index = static_cast<std::size_t>(dp->request->arg_index);
                if (index < call->args.size() && call->args[index].is_local()) {
                    request_seeds.push_back(
                        {site, AccessPath::of_local(call->args[index].local)});
                }
                break;
            }
            case Role::Pos::kReturn: break;
        }
    }
    // Raw-socket DPs (§4 extension): the request text flows through the
    // socket's *output stream*, an alias of the socket itself. Seed every
    // same-method `os = <socket>.getOutputStream()` result too.
    if (dp->library == "java.net.socket" && call->base) {
        const Method& method = program_->method_at(site.method_index);
        for (BlockId b = 0; b < method.blocks.size(); ++b) {
            const auto& stmts = method.blocks[b].statements;
            for (std::uint32_t i = 0; i < stmts.size(); ++i) {
                const auto* stream_call = std::get_if<Invoke>(&stmts[i]);
                if (!stream_call || !stream_call->dst || !stream_call->base) continue;
                if (stream_call->callee.method_name == "getOutputStream" &&
                    *stream_call->base == *call->base) {
                    request_seeds.push_back(
                        {site, AccessPath::of_local(*stream_call->dst)});
                }
            }
        }
    }
    if (!request_seeds.empty()) {
        request_taint = engine_->run(Direction::kBackward, request_seeds);
        request_slice = request_taint.statements;
        steps += request_taint.steps_used;
    }

    // ---- forward: response slice ----
    std::vector<TaintSeed> response_seeds;
    if (dp->response && dp->response->pos == Role::Pos::kReturn && call->dst) {
        response_seeds.push_back({site, AccessPath::of_local(*call->dst)});
    }
    if (dp->response_callback) {
        auto index = static_cast<std::size_t>(dp->response_callback->arg_index);
        if (index < call->args.size() && call->args[index].is_local()) {
            const Method& method = program_->method_at(site.method_index);
            const Type& listener_type = method.locals[call->args[index].local].type;
            if (const Method* target = program_->resolve_virtual(
                    {listener_type, dp->response_callback->method})) {
                auto tmi = program_->method_index(target->ref());
                std::uint32_t formal0 = target->is_static ? 0 : 1;
                std::uint32_t slot =
                    formal0 + static_cast<std::uint32_t>(
                                  dp->response_callback->param_index);
                if (tmi && slot < target->param_count) {
                    TaintSeed seed;
                    seed.stmt = {*tmi, 0, 0};
                    seed.path = AccessPath::of_local(slot);
                    seed.at_block_boundary = true;
                    response_seeds.push_back(seed);
                }
            }
        }
    }
    if (!response_seeds.empty()) {
        response_taint = engine_->run(Direction::kForward, response_seeds);
        response_slice = response_taint.statements;
        steps += response_taint.steps_used;
    }

    std::set<StmtRef> augmentation = augment(response_slice, steps);
    if (steps_used) *steps_used = steps;

    for (auto& context : contexts) {
        SlicedTransaction txn;
        txn.dp_site = site;
        txn.dp = dp;
        txn.context = std::move(context);
        txn.request_slice = request_slice;
        txn.response_slice = response_slice;
        txn.combined_slice = request_slice;
        txn.combined_slice.insert(response_slice.begin(), response_slice.end());
        txn.combined_slice.insert(augmentation.begin(), augmentation.end());
        txn.combined_slice.insert(site);
        txn.request_taint = request_taint;
        txn.response_taint = response_taint;
        resolve_trigger(txn);
        out.push_back(std::move(txn));
    }
    return out;
}

void Slicer::resolve_trigger(SlicedTransaction& txn) const {
    std::uint32_t root = txn.context.empty() ? txn.dp_site.method_index
                                             : txn.context.front().caller;
    const Method& method = program_->method_at(root);
    for (const auto& event : program_->events) {
        if (event.handler == method.ref()) {
            txn.trigger = event.label;
            txn.trigger_kind = event.kind;
            return;
        }
    }
    txn.trigger = "unknown:" + method.ref().qualified();
}

std::set<StmtRef> Slicer::augment(const std::set<StmtRef>& response_slice,
                                  std::size_t& steps_used) {
    // Object-aware slice augmentation (§3.1): for every local a response-
    // slice statement *uses* without an in-slice definition in the same
    // method, pull in the statements that construct it via backward taint.
    std::vector<TaintSeed> seeds;
    std::set<std::pair<std::uint32_t, LocalId>> seen;
    for (const StmtRef& ref : response_slice) {
        const Statement& stmt = program_->statement(ref);
        for (LocalId use : uses_of(stmt)) {
            if (!seen.insert({ref.method_index, use}).second) continue;
            bool defined_in_slice = false;
            for (const StmtRef& other : response_slice) {
                if (other.method_index != ref.method_index) continue;
                auto def = def_of(program_->statement(other));
                if (def && *def == use &&
                    (other.block < ref.block ||
                     (other.block == ref.block && other.index < ref.index))) {
                    defined_in_slice = true;
                    break;
                }
            }
            if (!defined_in_slice) {
                seeds.push_back({ref, AccessPath::of_local(use)});
            }
        }
    }
    if (seeds.empty()) return {};
    obs::counter("slicer.augment_seeds").add(seeds.size());
    auto result = engine_->run(Direction::kBackward, seeds);
    steps_used += result.steps_used;
    return std::move(result.statements);
}

double Slicer::slice_fraction(const Program& program,
                              const std::vector<SlicedTransaction>& txns) {
    std::set<StmtRef> all;
    for (const auto& txn : txns) {
        all.insert(txn.request_slice.begin(), txn.request_slice.end());
        all.insert(txn.response_slice.begin(), txn.response_slice.end());
    }
    std::size_t total = program.total_statements();
    if (total == 0) return 0;
    return static_cast<double>(all.size()) / static_cast<double>(total);
}

}  // namespace extractocol::slicing
