// Minimal leveled logger. Analyses are long-running; progress and anomaly
// reporting goes through here so library users can silence or capture it.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace extractocol::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sink invoked for every emitted record at or above the threshold.
using Sink = std::function<void(Level, const std::string&)>;

/// Replaces the global sink (default writes to stderr). Returns previous sink.
Sink set_sink(Sink sink);

/// Sets the minimum level that reaches the sink. Default: kWarn, so library
/// use is quiet unless something is wrong.
void set_threshold(Level level);
Level threshold();

void emit(Level level, const std::string& message);

namespace detail {
class Record {
public:
    explicit Record(Level level) : level_(level) {}
    Record(const Record&) = delete;
    Record& operator=(const Record&) = delete;
    ~Record() { emit(level_, stream_.str()); }

    template <typename T>
    Record& operator<<(const T& v) {
        stream_ << v;
        return *this;
    }

private:
    Level level_;
    std::ostringstream stream_;
};
}  // namespace detail

inline detail::Record debug() { return detail::Record(Level::kDebug); }
inline detail::Record info() { return detail::Record(Level::kInfo); }
inline detail::Record warn() { return detail::Record(Level::kWarn); }
inline detail::Record error() { return detail::Record(Level::kError); }

}  // namespace extractocol::log
