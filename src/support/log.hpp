// Structured leveled logger. Analyses are long-running; progress and anomaly
// reporting goes through here so library users can silence or capture it.
//
// Records carry a free-text message plus ordered key=value fields:
//
//   log::info().kv("phase", "slicing").kv("sites", n) << "slicing done";
//
// renders as `[INFO] slicing done phase=slicing sites=12`. Every record —
// from the logger and from the obs subsystem alike — flows through one
// process-wide RecordSink; the legacy string Sink API is an adapter over it.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace extractocol::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* level_name(Level level);

/// One structured log record: message plus ordered key=value fields.
struct LogRecord {
    Level level = Level::kInfo;
    std::string message;
    std::vector<std::pair<std::string, std::string>> fields;

    /// "message key=value ..." — values with spaces/'='/quotes are quoted.
    [[nodiscard]] std::string format() const;
};

/// Structured sink invoked for every record at or above the threshold.
using RecordSink = std::function<void(const LogRecord&)>;
/// Legacy flat sink; receives LogRecord::format() of each record.
using Sink = std::function<void(Level, const std::string&)>;

/// Replaces the global sink. Returns the previous sink (as installed, or an
/// adapter if the previous sink was of the other flavor).
RecordSink set_record_sink(RecordSink sink);
Sink set_sink(Sink sink);

/// Sets the minimum level that reaches the sink. Default: kWarn, so library
/// use is quiet unless something is wrong.
void set_threshold(Level level);
Level threshold();

void emit(Level level, const std::string& message);
void emit(LogRecord record);

// ------------------------------------------------- transient status line --
// A single \r-overwritten stderr line (the CLI's --progress ETA display)
// that must never interleave with log records. set_status_line redraws the
// line, clearing to end-of-line first; emit() erases an active line before
// the sink runs and redraws it afterwards, so records land on clean lines.
// end_status_line prints the final text terminated with '\n' (idempotent,
// no-op when no line is active) — callers run it before any other stderr
// block and on error paths, so no stale partial line is ever left behind.

void set_status_line(std::string text);
void end_status_line();

namespace detail {
class Record {
public:
    explicit Record(Level level) { record_.level = level; }
    Record(const Record&) = delete;
    Record& operator=(const Record&) = delete;
    ~Record() {
        record_.message = stream_.str();
        emit(std::move(record_));
    }

    template <typename T>
    Record& operator<<(const T& v) {
        stream_ << v;
        return *this;
    }

    /// Appends a structured field; values are stringified via operator<<.
    template <typename T>
    Record& kv(std::string_view key, const T& value) {
        std::ostringstream s;
        s << value;
        record_.fields.emplace_back(std::string(key), s.str());
        return *this;
    }

private:
    LogRecord record_;
    std::ostringstream stream_;
};
}  // namespace detail

inline detail::Record debug() { return detail::Record(Level::kDebug); }
inline detail::Record info() { return detail::Record(Level::kInfo); }
inline detail::Record warn() { return detail::Record(Level::kWarn); }
inline detail::Record error() { return detail::Record(Level::kError); }

}  // namespace extractocol::log
