// Opt-in memory accounting (resource-accounting layer, see DESIGN.md §11).
//
// memtrack replaces the global allocation functions (operator new/delete in
// every variant) with thin wrappers that, when enabled at runtime, keep a
// process-wide live-byte count and a peak watermark. The disabled path costs
// one relaxed atomic load per allocation — cheap enough to leave compiled
// into every binary — and the hooks never allocate or lock, so they are safe
// under sanitizers and inside allocation-sensitive code.
//
// Block sizes are measured with malloc_usable_size on the returned pointer
// (self-consistent between new and delete, and interposed correctly by
// asan/tsan); on libcs without it the hooks stay inert and available()
// reports false.
//
// Usage contract:
//   * enable once, early (CLI --memtrack does it before any analysis);
//     enabling mid-run undercounts frees of blocks allocated before the
//     switch, which is why live_bytes() clamps at zero;
//   * read live_bytes()/peak_bytes() at sampling points (per-app boundaries,
//     end of run) and feed them into obs gauges there — NEVER from inside
//     allocation paths;
//   * reset_peak() rebases the watermark to the current live count, giving
//     per-window peak attribution when windows do not overlap (sequential
//     batch mode). Overlapping windows (--jobs > 1 across apps) make
//     per-app attribution meaningless — same caveat as per-app counter
//     deltas — so callers must skip the per-app reset there.
#pragma once

#include <cstdint>

namespace extractocol::support::memtrack {

/// True when the hooks can measure block sizes on this platform.
bool available();

/// Turns accounting on or off. Off (the default) keeps the hooks inert.
void set_enabled(bool enabled);
[[nodiscard]] bool enabled();

/// Bytes currently allocated through the hooks (0 when disabled or when
/// frees of pre-enable blocks pushed the raw count negative).
[[nodiscard]] std::uint64_t live_bytes();

/// Highest live_bytes() observed since enable or the last reset_peak().
[[nodiscard]] std::uint64_t peak_bytes();

/// Highest live_bytes() observed since enable, ignoring reset_peak() — the
/// whole-run watermark behind the mem.peak_bytes gauge, which must survive
/// the per-app window rebasing batch mode performs.
[[nodiscard]] std::uint64_t process_peak_bytes();

/// Rebases the window peak watermark to the current live count.
void reset_peak();

}  // namespace extractocol::support::memtrack
