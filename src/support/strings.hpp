// Small string utilities shared by every module. All functions are pure and
// allocate only when they must return owned data.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace extractocol::strings {

/// Splits `s` on the single character `sep`. Adjacent separators yield empty
/// fields; an empty input yields one empty field (like Python's split with
/// an explicit separator).
std::vector<std::string> split(std::string_view s, char sep);

/// Splits on `sep`, dropping empty fields.
std::vector<std::string> split_nonempty(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);
bool contains(std::string_view s, std::string_view needle);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view s, std::string_view from, std::string_view to);

/// Longest common prefix length of two strings.
std::size_t common_prefix_len(std::string_view a, std::string_view b);

/// True if every character is an ASCII decimal digit (and s is non-empty).
bool is_all_digits(std::string_view s);

/// Percent-encodes characters outside [A-Za-z0-9_.~-] (RFC 3986 unreserved).
std::string percent_encode(std::string_view s);

/// Decodes %XX sequences; invalid sequences are passed through verbatim.
std::string percent_decode(std::string_view s);

/// Lower-cases ASCII letters.
std::string to_lower(std::string_view s);

}  // namespace extractocol::strings
