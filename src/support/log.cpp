#include "support/log.hpp"

#include <cstdio>
#include <iostream>
#include <mutex>

namespace extractocol::log {

const char* level_name(Level level) {
    switch (level) {
        case Level::kDebug: return "DEBUG";
        case Level::kInfo: return "INFO";
        case Level::kWarn: return "WARN";
        case Level::kError: return "ERROR";
    }
    return "?";
}

std::string LogRecord::format() const {
    std::string out = message;
    for (const auto& [key, value] : fields) {
        if (!out.empty()) out += ' ';
        out += key;
        out += '=';
        bool needs_quotes = value.empty() ||
                            value.find_first_of(" =\"") != std::string::npos;
        if (needs_quotes) {
            out += '"';
            for (char c : value) {
                if (c == '"' || c == '\\') out += '\\';
                out += c;
            }
            out += '"';
        } else {
            out += value;
        }
    }
    return out;
}

namespace {

std::mutex g_mutex;
Level g_threshold = Level::kWarn;
bool g_status_active = false;
std::string g_status_text;

// "\r" returns to column 0, "\x1b[K" erases to end of line: a shorter
// redraw (or a log record) never leaves a stale tail from a longer one.
void erase_status_unlocked() {
    if (!g_status_active) return;
    std::fputs("\r\x1b[K", stderr);
    std::fflush(stderr);
}

void redraw_status_unlocked() {
    if (!g_status_active) return;
    std::fputs("\r\x1b[K", stderr);
    std::fputs(g_status_text.c_str(), stderr);
    std::fflush(stderr);
}

RecordSink& global_sink() {
    static RecordSink sink = [](const LogRecord& record) {
        std::cerr << "[" << level_name(record.level) << "] " << record.format()
                  << "\n";
    };
    return sink;
}

}  // namespace

RecordSink set_record_sink(RecordSink sink) {
    std::lock_guard<std::mutex> lock(g_mutex);
    RecordSink previous = global_sink();
    global_sink() = std::move(sink);
    return previous;
}

Sink set_sink(Sink sink) {
    std::lock_guard<std::mutex> lock(g_mutex);
    RecordSink previous = global_sink();
    if (sink) {
        global_sink() = [flat = std::move(sink)](const LogRecord& record) {
            flat(record.level, record.format());
        };
    } else {
        global_sink() = RecordSink();
    }
    // Adapt the previous structured sink back to the flat signature so
    // callers can save/restore through the legacy API.
    if (!previous) return Sink();
    return [previous = std::move(previous)](Level level, const std::string& message) {
        previous(LogRecord{level, message, {}});
    };
}

void set_threshold(Level level) {
    std::lock_guard<std::mutex> lock(g_mutex);
    g_threshold = level;
}

Level threshold() {
    std::lock_guard<std::mutex> lock(g_mutex);
    return g_threshold;
}

void emit(Level level, const std::string& message) {
    emit(LogRecord{level, message, {}});
}

void emit(LogRecord record) {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (static_cast<int>(record.level) < static_cast<int>(g_threshold)) return;
    if (!global_sink()) return;
    // The status line and log records share stderr; erase the transient
    // line before the sink writes so the record starts at column 0 on a
    // clean line, then redraw it after.
    erase_status_unlocked();
    global_sink()(record);
    redraw_status_unlocked();
}

void set_status_line(std::string text) {
    std::lock_guard<std::mutex> lock(g_mutex);
    g_status_active = true;
    g_status_text = std::move(text);
    redraw_status_unlocked();
}

void end_status_line() {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (!g_status_active) return;
    std::fputs("\r\x1b[K", stderr);
    std::fputs(g_status_text.c_str(), stderr);
    std::fputc('\n', stderr);
    std::fflush(stderr);
    g_status_active = false;
    g_status_text.clear();
}

}  // namespace extractocol::log
