#include "support/log.hpp"

#include <iostream>
#include <mutex>

namespace extractocol::log {

namespace {

std::mutex g_mutex;
Level g_threshold = Level::kWarn;

const char* level_name(Level level) {
    switch (level) {
        case Level::kDebug: return "DEBUG";
        case Level::kInfo: return "INFO";
        case Level::kWarn: return "WARN";
        case Level::kError: return "ERROR";
    }
    return "?";
}

Sink& global_sink() {
    static Sink sink = [](Level level, const std::string& message) {
        std::cerr << "[" << level_name(level) << "] " << message << "\n";
    };
    return sink;
}

}  // namespace

Sink set_sink(Sink sink) {
    std::lock_guard<std::mutex> lock(g_mutex);
    Sink previous = global_sink();
    global_sink() = std::move(sink);
    return previous;
}

void set_threshold(Level level) {
    std::lock_guard<std::mutex> lock(g_mutex);
    g_threshold = level;
}

Level threshold() {
    std::lock_guard<std::mutex> lock(g_mutex);
    return g_threshold;
}

void emit(Level level, const std::string& message) {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (static_cast<int>(level) < static_cast<int>(g_threshold)) return;
    if (global_sink()) global_sink()(level, message);
}

}  // namespace extractocol::log
