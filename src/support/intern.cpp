#include "support/intern.hpp"

#include <atomic>
#include <cassert>
#include <cstring>
#include <mutex>
#include <vector>

#include "support/hash.hpp"

namespace extractocol::support::intern {

namespace {

// Storage: append-only chunked arrays so published entries never move and
// readers never take a lock. Entry records (offset into a character chunk,
// length, precomputed hash) live in fixed-size EntryChunks; the character
// data lives in CharChunks. Both chunk directories are arrays of atomic
// pointers published with release stores; entry fields are written before
// the entry becomes reachable (either through the lookup table's
// release-stored slot or through a release increment of the entry count).

constexpr std::size_t kEntriesPerChunk = 4096;
constexpr std::size_t kMaxEntryChunks = 4096;  // 16M symbols, plenty
constexpr std::size_t kCharChunkBytes = 1 << 16;

struct Entry {
    const char* data = nullptr;
    std::uint32_t length = 0;
    std::uint64_t hash = 0;
};

struct EntryChunk {
    Entry entries[kEntriesPerChunk];
};

/// Open-addressing lookup table: each slot holds symbol+1 (0 = empty).
/// Grown by allocating a bigger table and republishing; retired tables are
/// kept alive forever (bounded by geometric growth) so readers holding a
/// stale pointer stay safe.
struct Table {
    std::size_t mask = 0;  // capacity - 1, capacity is a power of two
    std::vector<std::atomic<std::uint32_t>> slots;

    explicit Table(std::size_t capacity) : mask(capacity - 1), slots(capacity) {}
};

class Interner {
public:
    Interner() {
        table_.store(new Table(1 << 12), std::memory_order_release);
        Symbol empty = insert_locked("");
        (void)empty;
        assert(empty == 0);
    }

    Symbol intern(std::string_view s) {
        std::uint64_t h = fnv1a(s);
        Table* table = table_.load(std::memory_order_acquire);
        Symbol sym;
        if (probe(*table, s, h, sym)) return sym;
        std::lock_guard<std::mutex> lock(mutex_);
        // Re-probe the current table: another thread may have inserted (or
        // grown the table) while we waited for the lock.
        Table* current = table_.load(std::memory_order_relaxed);
        if (probe(*current, s, h, sym)) return sym;
        return insert_locked(s);
    }

    const Entry& entry(Symbol sym) const {
        assert(sym < count_.load(std::memory_order_acquire));
        return chunk_ptr(sym / kEntriesPerChunk)->entries[sym % kEntriesPerChunk];
    }

    std::size_t size() const { return count_.load(std::memory_order_acquire); }

private:
    bool probe(const Table& table, std::string_view s, std::uint64_t h,
               Symbol& out) const {
        for (std::size_t i = h & table.mask;; i = (i + 1) & table.mask) {
            std::uint32_t slot = table.slots[i].load(std::memory_order_acquire);
            if (slot == 0) return false;
            const Entry& e = entry(slot - 1);
            if (e.hash == h && e.length == s.size() &&
                std::memcmp(e.data, s.data(), s.size()) == 0) {
                out = slot - 1;
                return true;
            }
        }
    }

    EntryChunk* chunk_ptr(std::size_t index) const {
        return entry_chunks_[index].load(std::memory_order_acquire);
    }

    /// Appends the string bytes to character storage. Called under mutex_.
    const char* store_chars(std::string_view s) {
        if (current_chars_ == nullptr ||
            char_used_ + s.size() + 1 > kCharChunkBytes) {
            std::size_t bytes = s.size() + 1 > kCharChunkBytes ? s.size() + 1
                                                               : kCharChunkBytes;
            current_chars_ = new char[bytes];
            char_used_ = 0;
        }
        char* dst = current_chars_ + char_used_;
        std::memcpy(dst, s.data(), s.size());
        dst[s.size()] = '\0';
        char_used_ += s.size() + 1;
        return dst;
    }

    /// Inserts a new symbol. Called under mutex_ (except from the ctor).
    Symbol insert_locked(std::string_view s) {
        Symbol sym = static_cast<Symbol>(count_.load(std::memory_order_relaxed));
        std::size_t chunk = sym / kEntriesPerChunk;
        assert(chunk < kMaxEntryChunks && "interner symbol space exhausted");
        EntryChunk* ec = entry_chunks_[chunk].load(std::memory_order_relaxed);
        if (ec == nullptr) {
            ec = new EntryChunk();
            entry_chunks_[chunk].store(ec, std::memory_order_release);
        }
        Entry& e = ec->entries[sym % kEntriesPerChunk];
        e.data = store_chars(s);
        e.length = static_cast<std::uint32_t>(s.size());
        e.hash = fnv1a(s);
        // Publish the entry before the symbol becomes discoverable.
        count_.fetch_add(1, std::memory_order_release);

        Table* table = table_.load(std::memory_order_relaxed);
        if ((count_.load(std::memory_order_relaxed)) * 4 > (table->mask + 1) * 3) {
            grow(table);  // re-places every symbol, including this one
        } else {
            place(*table, e.hash, sym + 1);
        }
        return sym;
    }

    /// Allocates a table 4x bigger, re-places every symbol, publishes it.
    Table* grow(Table* old) {
        auto* bigger = new Table((old->mask + 1) * 4);
        std::uint32_t n = static_cast<std::uint32_t>(
            count_.load(std::memory_order_relaxed));
        for (std::uint32_t sym = 0; sym < n; ++sym) {
            place(*bigger, entry(sym).hash, sym + 1);
        }
        table_.store(bigger, std::memory_order_release);
        retired_.push_back(old);  // readers may still hold it; never freed
        return bigger;
    }

    static void place(Table& table, std::uint64_t h, std::uint32_t slot_value) {
        for (std::size_t i = h & table.mask;; i = (i + 1) & table.mask) {
            if (table.slots[i].load(std::memory_order_relaxed) == 0) {
                table.slots[i].store(slot_value, std::memory_order_release);
                return;
            }
        }
    }

    std::mutex mutex_;
    std::atomic<Table*> table_{nullptr};
    std::atomic<EntryChunk*> entry_chunks_[kMaxEntryChunks] = {};
    std::atomic<std::uint64_t> count_{0};
    char* current_chars_ = nullptr;      // guarded by mutex_
    std::size_t char_used_ = 0;          // guarded by mutex_
    std::vector<Table*> retired_;        // guarded by mutex_
};

Interner& instance() {
    static Interner* interner = new Interner();  // intentionally leaked
    return *interner;
}

}  // namespace

Symbol intern(std::string_view s) { return instance().intern(s); }

std::string_view str(Symbol sym) {
    const Entry& e = instance().entry(sym);
    return {e.data, e.length};
}

std::uint64_t hash(Symbol sym) { return instance().entry(sym).hash; }

std::size_t size() { return instance().size(); }

}  // namespace extractocol::support::intern
