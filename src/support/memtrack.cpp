#include "support/memtrack.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

#if __has_include(<malloc.h>)
#include <malloc.h>
#define XT_MEMTRACK_USABLE_SIZE 1
#else
#define XT_MEMTRACK_USABLE_SIZE 0
#endif

namespace extractocol::support::memtrack {

namespace {

// Constant-initialized so the hooks are safe for allocations that happen
// before any dynamic initializer runs.
std::atomic<bool> g_enabled{false};
std::atomic<std::int64_t> g_live{0};
std::atomic<std::int64_t> g_peak{0};
std::atomic<std::int64_t> g_process_peak{0};

inline void raise_to(std::atomic<std::int64_t>& peak_slot, std::int64_t live) {
    std::int64_t peak = peak_slot.load(std::memory_order_relaxed);
    while (live > peak &&
           !peak_slot.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
    }
}

inline std::int64_t block_size(void* ptr) {
#if XT_MEMTRACK_USABLE_SIZE
    return ptr == nullptr ? 0 : static_cast<std::int64_t>(malloc_usable_size(ptr));
#else
    (void)ptr;
    return 0;
#endif
}

inline void on_alloc(void* ptr) {
    if (ptr == nullptr || !g_enabled.load(std::memory_order_relaxed)) return;
    std::int64_t size = block_size(ptr);
    std::int64_t live = g_live.fetch_add(size, std::memory_order_relaxed) + size;
    raise_to(g_peak, live);
    raise_to(g_process_peak, live);
}

inline void on_free(void* ptr) {
    if (ptr == nullptr || !g_enabled.load(std::memory_order_relaxed)) return;
    g_live.fetch_sub(block_size(ptr), std::memory_order_relaxed);
}

void* allocate(std::size_t size) {
    if (size == 0) size = 1;
    for (;;) {
        void* ptr = std::malloc(size);
        if (ptr != nullptr) {
            on_alloc(ptr);
            return ptr;
        }
        std::new_handler handler = std::get_new_handler();
        if (handler == nullptr) throw std::bad_alloc();
        handler();
    }
}

void* allocate_aligned(std::size_t size, std::size_t alignment) {
    if (size == 0) size = 1;
    for (;;) {
        void* ptr = nullptr;
        // posix_memalign requires alignment to be a power-of-two multiple of
        // sizeof(void*); std::align_val_t guarantees the power of two.
        std::size_t align = alignment < sizeof(void*) ? sizeof(void*) : alignment;
        if (posix_memalign(&ptr, align, size) == 0) {
            on_alloc(ptr);
            return ptr;
        }
        std::new_handler handler = std::get_new_handler();
        if (handler == nullptr) throw std::bad_alloc();
        handler();
    }
}

inline void deallocate(void* ptr) {
    on_free(ptr);
    std::free(ptr);
}

}  // namespace

bool available() { return XT_MEMTRACK_USABLE_SIZE != 0; }

void set_enabled(bool enabled) {
    if (enabled && !g_enabled.load(std::memory_order_relaxed)) {
        g_live.store(0, std::memory_order_relaxed);
        g_peak.store(0, std::memory_order_relaxed);
        g_process_peak.store(0, std::memory_order_relaxed);
    }
    g_enabled.store(enabled && available(), std::memory_order_relaxed);
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

std::uint64_t live_bytes() {
    std::int64_t live = g_live.load(std::memory_order_relaxed);
    return live > 0 ? static_cast<std::uint64_t>(live) : 0;
}

std::uint64_t peak_bytes() {
    std::int64_t peak = g_peak.load(std::memory_order_relaxed);
    return peak > 0 ? static_cast<std::uint64_t>(peak) : 0;
}

std::uint64_t process_peak_bytes() {
    std::int64_t peak = g_process_peak.load(std::memory_order_relaxed);
    return peak > 0 ? static_cast<std::uint64_t>(peak) : 0;
}

void reset_peak() {
    std::int64_t live = g_live.load(std::memory_order_relaxed);
    g_peak.store(live > 0 ? live : 0, std::memory_order_relaxed);
}

}  // namespace extractocol::support::memtrack

// ------------------------------------------------------ global operators --
//
// Every replaceable allocation function forwards to the tracked
// allocate/deallocate pair above. free() handles posix_memalign blocks, so
// the aligned deletes share the same path.

namespace memtrack = extractocol::support::memtrack;
using memtrack::allocate;
using memtrack::allocate_aligned;
using memtrack::deallocate;

void* operator new(std::size_t size) { return allocate(size); }
void* operator new[](std::size_t size) { return allocate(size); }
void* operator new(std::size_t size, std::align_val_t align) {
    return allocate_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
    return allocate_aligned(size, static_cast<std::size_t>(align));
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    try {
        return allocate(size);
    } catch (...) {
        return nullptr;
    }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    try {
        return allocate(size);
    } catch (...) {
        return nullptr;
    }
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
    try {
        return allocate_aligned(size, static_cast<std::size_t>(align));
    } catch (...) {
        return nullptr;
    }
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
    try {
        return allocate_aligned(size, static_cast<std::size_t>(align));
    } catch (...) {
        return nullptr;
    }
}

void operator delete(void* ptr) noexcept { deallocate(ptr); }
void operator delete[](void* ptr) noexcept { deallocate(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { deallocate(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { deallocate(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { deallocate(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { deallocate(ptr); }
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
    deallocate(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
    deallocate(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept { deallocate(ptr); }
void operator delete[](void* ptr, const std::nothrow_t&) noexcept { deallocate(ptr); }
void operator delete(void* ptr, std::align_val_t, const std::nothrow_t&) noexcept {
    deallocate(ptr);
}
void operator delete[](void* ptr, std::align_val_t, const std::nothrow_t&) noexcept {
    deallocate(ptr);
}
