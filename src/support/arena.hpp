// Arena / bump allocation (memory-layout layer, DESIGN.md §13).
//
// An Arena hands out pointer-bumped storage from geometrically-growing
// chunks: allocation is a couple of arithmetic ops, deallocation is a no-op,
// and everything is released at once when the arena is destroyed or reset().
// This fits the analysis pipeline's monotone per-run state — taint facts
// only accumulate during a worklist run and die together at the end — where
// per-node malloc/free both costs time and fragments the peak.
//
// ArenaAllocator<T> adapts an Arena to the std allocator interface so
// standard containers can live inside one. deallocate() is a no-op by
// design: containers that erase or rehash leave their old storage behind in
// the arena (bounded by geometric growth for rehashes), so back only
// grow-mostly containers with it.
//
// Chunks are obtained with operator new, so --memtrack sees arena memory
// like any other allocation and peak accounting stays truthful.
//
// Arenas are single-threaded by contract (one per analysis run); they are
// not synchronized.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

namespace extractocol::support {

class Arena {
public:
    static constexpr std::size_t kMinChunkBytes = 4 << 10;
    static constexpr std::size_t kMaxChunkBytes = 256 << 10;

    Arena() = default;
    ~Arena() { release(); }
    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    /// Bump-allocates `size` bytes at `align` (align must be a power of 2).
    void* allocate(std::size_t size, std::size_t align) {
        std::uintptr_t p = (cursor_ + (align - 1)) & ~(std::uintptr_t(align) - 1);
        if (p + size > limit_) {
            return allocate_slow(size, align);
        }
        cursor_ = p + size;
        used_ += size;
        return reinterpret_cast<void*>(p);
    }

    template <typename T, typename... Args>
    T* create(Args&&... args) {
        return ::new (allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
    }

    /// Frees every chunk. All pointers handed out become invalid.
    void release() {
        Chunk* c = chunks_;
        while (c != nullptr) {
            Chunk* next = c->next;
            ::operator delete(static_cast<void*>(c));
            c = next;
        }
        chunks_ = nullptr;
        cursor_ = limit_ = 0;
        used_ = 0;
        next_chunk_bytes_ = kMinChunkBytes;
    }

    /// Rewinds to empty while *keeping* the chunks for reuse (steady-state
    /// runs stop allocating from the OS entirely). Outstanding pointers
    /// become logically invalid.
    void reset() {
        if (chunks_ == nullptr) return;
        // Keep only the newest (largest) chunk; drop the growth tail.
        Chunk* keep = chunks_;
        Chunk* c = keep->next;
        while (c != nullptr) {
            Chunk* next = c->next;
            ::operator delete(static_cast<void*>(c));
            c = next;
        }
        keep->next = nullptr;
        chunks_ = keep;
        cursor_ = keep->begin();
        limit_ = keep->end;
        used_ = 0;
    }

    /// Bytes handed out since construction / the last reset().
    [[nodiscard]] std::size_t bytes_used() const { return used_; }
    /// Bytes obtained from the system allocator and currently held.
    [[nodiscard]] std::size_t bytes_reserved() const {
        std::size_t total = 0;
        for (Chunk* c = chunks_; c != nullptr; c = c->next) total += c->size;
        return total;
    }

private:
    struct Chunk {
        Chunk* next = nullptr;
        std::size_t size = 0;  // total bytes including the header
        std::uintptr_t end = 0;

        [[nodiscard]] std::uintptr_t begin() {
            return reinterpret_cast<std::uintptr_t>(this) + sizeof(Chunk);
        }
    };

    void* allocate_slow(std::size_t size, std::size_t align) {
        std::size_t need = size + align + sizeof(Chunk);
        std::size_t bytes = next_chunk_bytes_;
        while (bytes < need) bytes *= 2;
        if (next_chunk_bytes_ < kMaxChunkBytes) next_chunk_bytes_ *= 2;
        auto* chunk = static_cast<Chunk*>(::operator new(bytes));
        chunk->next = chunks_;
        chunk->size = bytes;
        chunk->end = reinterpret_cast<std::uintptr_t>(chunk) + bytes;
        chunks_ = chunk;
        cursor_ = chunk->begin();
        limit_ = chunk->end;
        std::uintptr_t p = (cursor_ + (align - 1)) & ~(std::uintptr_t(align) - 1);
        cursor_ = p + size;
        used_ += size;
        return reinterpret_cast<void*>(p);
    }

    Chunk* chunks_ = nullptr;
    std::uintptr_t cursor_ = 0;
    std::uintptr_t limit_ = 0;
    std::size_t used_ = 0;
    std::size_t next_chunk_bytes_ = kMinChunkBytes;
};

/// std-compatible allocator over an Arena. Default-constructed (no arena)
/// it falls back to the heap so allocator-aware containers stay
/// default-constructible; copies propagate the arena, so a container copy
/// constructed from an arena-backed one allocates from the same arena.
template <typename T>
class ArenaAllocator {
public:
    using value_type = T;

    ArenaAllocator() = default;
    explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
    template <typename U>
    ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}  // NOLINT

    T* allocate(std::size_t n) {
        if (arena_ == nullptr) {
            return static_cast<T*>(::operator new(n * sizeof(T)));
        }
        return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
    }

    void deallocate(T* p, std::size_t) noexcept {
        if (arena_ == nullptr) ::operator delete(static_cast<void*>(p));
        // Arena-backed storage is reclaimed wholesale at reset/destruction.
    }

    [[nodiscard]] Arena* arena() const { return arena_; }

    template <typename U>
    bool operator==(const ArenaAllocator<U>& other) const {
        return arena_ == other.arena();
    }

private:
    Arena* arena_ = nullptr;
};

}  // namespace extractocol::support
