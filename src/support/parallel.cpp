#include "support/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

namespace extractocol::support {

namespace {

std::atomic<ThreadStartHook> g_thread_start_hook{nullptr};
std::atomic<BatchStatsHook> g_batch_stats_hook{nullptr};

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

unsigned resolve_jobs(unsigned jobs) {
    if (jobs != 0) return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void set_thread_start_hook(ThreadStartHook hook) {
    g_thread_start_hook.store(hook, std::memory_order_release);
}

ThreadStartHook thread_start_hook() {
    return g_thread_start_hook.load(std::memory_order_acquire);
}

void set_batch_stats_hook(BatchStatsHook hook) {
    g_batch_stats_hook.store(hook, std::memory_order_release);
}

BatchStatsHook batch_stats_hook() {
    return g_batch_stats_hook.load(std::memory_order_acquire);
}

ThreadPool::ThreadPool(unsigned workers) {
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
        threads_.emplace_back([this, i] {
            if (ThreadStartHook hook = thread_start_hook()) hook(i);
            worker_loop();
        });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
    for (;;) {
        Batch* batch = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [this] {
                return stop_ ||
                       (batch_ != nullptr &&
                        batch_->next.load(std::memory_order_relaxed) < batch_->n);
            });
            if (stop_) return;
            batch = batch_;
            batch->active += 1;
        }
        drain(*batch);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            batch->active -= 1;
            if (batch->completed.load(std::memory_order_relaxed) == batch->n &&
                batch->active == 0) {
                done_cv_.notify_all();
            }
        }
    }
}

void ThreadPool::drain(Batch& batch) {
    // Timing is gated on batch.timed (a hook was installed when the batch
    // started): an unobserved batch pays zero clock reads per index.
    //
    // The claim path is lock-free: one relaxed fetch-add per index. The
    // header used to promise "an atomic cursor" while this loop took mutex_
    // for every claim *and* every completion — at small work items that
    // self-inflicted claim-lock contention dominated parallel.queue_wait_ms
    // and ate the whole --jobs speedup. mutex_ is now only touched on the
    // error path and for the one participant-stats append per batch.
    const bool timed = batch.timed;
    WorkerBatchStats ws;
    for (;;) {
        std::size_t index = batch.next.fetch_add(1, std::memory_order_relaxed);
        if (index >= batch.n) break;
        ws.claimed += 1;
        Clock::time_point run_start;
        if (timed) run_start = Clock::now();
        std::exception_ptr error;
        try {
            (*batch.fn)(index);
        } catch (...) {
            error = std::current_exception();
        }
        if (timed) ws.busy_ms += ms_since(run_start);
        if (error) {
            Clock::time_point wait_start;
            if (timed) wait_start = Clock::now();
            std::lock_guard<std::mutex> lock(mutex_);
            if (timed) ws.queue_wait_ms += ms_since(wait_start);
            errors_.emplace_back(index, error);
        }
        // Release-publish the completion so the caller's done_cv_ predicate
        // (acquire) observes all of this index's side effects.
        batch.completed.fetch_add(1, std::memory_order_release);
    }
    if (timed) {
        Clock::time_point wait_start = Clock::now();
        std::lock_guard<std::mutex> lock(mutex_);
        ws.queue_wait_ms += ms_since(wait_start);
        batch.participants.push_back(ws);
    }
}

void ThreadPool::for_each_index(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    BatchStatsHook hook = batch_stats_hook();
    Batch batch;
    batch.n = n;
    batch.fn = &fn;
    batch.timed = hook != nullptr;
    Clock::time_point wall_start;
    if (batch.timed) wall_start = Clock::now();
    if (!threads_.empty() && n > 1) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            batch_ = &batch;
        }
        work_cv_.notify_all();
    }
    // The caller is one of the batch's executors either way.
    drain(batch);
    std::vector<std::pair<std::size_t, std::exception_ptr>> errors;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (batch_ == &batch) {
            done_cv_.wait(lock, [&batch] {
                return batch.completed == batch.n && batch.active == 0;
            });
            batch_ = nullptr;
        }
        errors.swap(errors_);
    }
    if (batch.timed) {
        // After the done_cv wait every participant has appended its stats,
        // so the vector is complete and no longer shared. Fire the hook
        // before the rethrow: a failed batch's contention is still data.
        BatchStats stats;
        stats.n = n;
        stats.wall_ms = ms_since(wall_start);
        stats.participants = std::move(batch.participants);
        hook(stats);
    }
    if (!errors.empty()) {
        auto lowest = std::min_element(
            errors.begin(), errors.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
        std::rethrow_exception(lowest->second);
    }
}

void parallel_for(unsigned jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
    unsigned total = std::max(1u, jobs);
    unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(total - 1, n > 0 ? n - 1 : 0));
    ThreadPool pool(workers);
    pool.for_each_index(n, fn);
}

}  // namespace extractocol::support
