#include "support/strings.hpp"

#include <algorithm>
#include <cctype>

namespace extractocol::strings {

std::vector<std::string> split(std::string_view s, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = s.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(start));
            return out;
        }
        out.emplace_back(s.substr(start, pos - start));
        start = pos + 1;
    }
}

std::vector<std::string> split_nonempty(std::string_view s, char sep) {
    std::vector<std::string> out;
    for (auto& field : split(s, sep)) {
        if (!field.empty()) out.push_back(std::move(field));
    }
    return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i != 0) out += sep;
        out += parts[i];
    }
    return out;
}

std::string_view trim(std::string_view s) {
    const auto is_space = [](char c) {
        return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v';
    };
    while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
    while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
    return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
    return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
    return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view s, std::string_view needle) {
    return s.find(needle) != std::string_view::npos;
}

std::string replace_all(std::string_view s, std::string_view from, std::string_view to) {
    if (from.empty()) return std::string(s);
    std::string out;
    out.reserve(s.size());
    std::size_t start = 0;
    while (true) {
        std::size_t pos = s.find(from, start);
        if (pos == std::string_view::npos) {
            out.append(s.substr(start));
            return out;
        }
        out.append(s.substr(start, pos - start));
        out.append(to);
        start = pos + from.size();
    }
}

std::size_t common_prefix_len(std::string_view a, std::string_view b) {
    std::size_t n = std::min(a.size(), b.size());
    std::size_t i = 0;
    while (i < n && a[i] == b[i]) ++i;
    return i;
}

bool is_all_digits(std::string_view s) {
    if (s.empty()) return false;
    return std::all_of(s.begin(), s.end(),
                       [](unsigned char c) { return std::isdigit(c) != 0; });
}

namespace {
bool is_unreserved(unsigned char c) {
    return std::isalnum(c) != 0 || c == '-' || c == '_' || c == '.' || c == '~';
}
int hex_value(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}
}  // namespace

std::string percent_encode(std::string_view s) {
    static const char* kHex = "0123456789ABCDEF";
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        if (is_unreserved(c)) {
            out.push_back(static_cast<char>(c));
        } else {
            out.push_back('%');
            out.push_back(kHex[c >> 4]);
            out.push_back(kHex[c & 0xF]);
        }
    }
    return out;
}

std::string percent_decode(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '%' && i + 2 < s.size()) {
            int hi = hex_value(s[i + 1]);
            int lo = hex_value(s[i + 2]);
            if (hi >= 0 && lo >= 0) {
                out.push_back(static_cast<char>(hi * 16 + lo));
                i += 2;
                continue;
            }
        }
        out.push_back(s[i]);
    }
    return out;
}

std::string to_lower(std::string_view s) {
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return out;
}

}  // namespace extractocol::strings
