// Global string interning (memory-layout layer, DESIGN.md §13).
//
// Hot analysis comparisons — access-path fields, static-field owners,
// global-channel keys, API method names — used to be std::string compares
// plus per-copy heap allocations. intern() maps each distinct string to a
// dense 32-bit Symbol exactly once; afterwards equality is an integer
// compare, hashing is a table lookup of the precomputed FNV-1a value, and
// copying a symbol costs nothing.
//
// Concurrency contract: intern() and all readers are safe from any thread.
// The read path (already-interned string, or str()/hash() on a held symbol)
// is lock-free — one acquire load of the open-addressing table plus probe
// reads; only a first-ever insertion takes the interner mutex. Symbols are
// process-global and never freed.
//
// Determinism contract: symbol *ids* depend on interning order, which under
// --jobs > 1 depends on thread interleaving. Ids must therefore NEVER leak
// into output or into any ordering that can reach output — order by string
// content (or by precomputed content hash) instead. AccessPathHash follows
// this rule: it mixes hash(sym), not sym.
#pragma once

#include <cstdint>
#include <string_view>

namespace extractocol::support::intern {

/// Dense id of an interned string. Symbol 0 is always the empty string.
using Symbol = std::uint32_t;

/// Interns `s`, returning its symbol (allocating one on first sight).
Symbol intern(std::string_view s);

/// The interned string. Valid for the process lifetime.
[[nodiscard]] std::string_view str(Symbol sym);

/// Precomputed FNV-1a hash of the interned string (content-stable: equal
/// strings hash equal in every process, on every platform).
[[nodiscard]] std::uint64_t hash(Symbol sym);

/// Number of distinct strings interned so far (diagnostics/tests).
[[nodiscard]] std::size_t size();

}  // namespace extractocol::support::intern
