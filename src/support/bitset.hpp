// Dense bit-packed sets (memory-layout layer, DESIGN.md §13).
//
// The taint engine's per-run bookkeeping — which methods a slice touched,
// which event roots may exchange global taint, which worklist blocks are
// queued — is dense over small integer universes (method/block/statement
// indices of one app). std::set<std::uint32_t> spent a red-black node per
// element and a pointer chase per query; a DenseBitset spends one bit and
// propagates whole sets with bulk word-OR, the representation the yosys
// taint kernel strips propagation down to (SNIPPETS.md snippet 1:
// propagate-as-max/or-over-operands).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace extractocol::support {

class DenseBitset {
public:
    DenseBitset() = default;
    explicit DenseBitset(std::size_t bits) { resize(bits); }

    /// Grows/shrinks the universe; new bits are zero.
    void resize(std::size_t bits) {
        bits_ = bits;
        words_.resize((bits + 63) / 64, 0);
    }

    [[nodiscard]] std::size_t size() const { return bits_; }

    [[nodiscard]] bool test(std::size_t i) const {
        return (words_[i >> 6] >> (i & 63)) & 1u;
    }

    /// Sets bit i; returns true if it was previously clear.
    bool set(std::size_t i) {
        std::uint64_t& w = words_[i >> 6];
        std::uint64_t mask = std::uint64_t{1} << (i & 63);
        if (w & mask) return false;
        w |= mask;
        return true;
    }

    /// Clears bit i.
    void clear(std::size_t i) {
        words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
    }

    /// Bulk OR; returns true if any bit changed. `other` must not be larger.
    bool or_with(const DenseBitset& other) {
        bool changed = false;
        for (std::size_t w = 0; w < other.words_.size(); ++w) {
            std::uint64_t merged = words_[w] | other.words_[w];
            changed |= merged != words_[w];
            words_[w] = merged;
        }
        return changed;
    }

    /// True if this and `other` share any set bit.
    [[nodiscard]] bool intersects(const DenseBitset& other) const {
        std::size_t n = words_.size() < other.words_.size() ? words_.size()
                                                            : other.words_.size();
        for (std::size_t w = 0; w < n; ++w) {
            if (words_[w] & other.words_[w]) return true;
        }
        return false;
    }

    [[nodiscard]] bool any() const {
        for (std::uint64_t w : words_) {
            if (w != 0) return true;
        }
        return false;
    }

    [[nodiscard]] std::size_t count() const {
        std::size_t total = 0;
        for (std::uint64_t w : words_) total += static_cast<std::size_t>(__builtin_popcountll(w));
        return total;
    }

    /// Calls fn(index) for every set bit, in ascending order — the bridge
    /// back to ordered containers where output order matters.
    template <typename Fn>
    void for_each(Fn&& fn) const {
        for (std::size_t wi = 0; wi < words_.size(); ++wi) {
            std::uint64_t w = words_[wi];
            while (w != 0) {
                unsigned bit = static_cast<unsigned>(__builtin_ctzll(w));
                fn(wi * 64 + bit);
                w &= w - 1;
            }
        }
    }

    bool operator==(const DenseBitset&) const = default;

private:
    std::size_t bits_ = 0;
    std::vector<std::uint64_t> words_;
};

}  // namespace extractocol::support
