// Deterministic data parallelism for the analysis pipeline.
//
// The pipeline's expensive stages are embarrassingly parallel over an index
// range (one slice per demarcation-point site, one signature build per
// transaction, one analysis per app). `ThreadPool::for_each_index` runs a
// callable over [0, n) on a fixed set of worker threads plus the calling
// thread; indices are claimed dynamically (an atomic cursor), but callers
// write results into pre-sized slots keyed by index and keep any
// merge/reduce step sequential, so the output is byte-identical for every
// thread count. See DESIGN.md "Parallelism".
//
// Exception contract: every index is attempted even if some throw; after
// the batch drains, the exception raised by the *lowest* failing index is
// rethrown (again independent of scheduling). A pool with zero workers
// degenerates to an inline sequential loop with the same contract.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace extractocol::support {

/// Resolves a user-facing `--jobs` value: 0 = one job per hardware thread
/// (at least 1), anything else is taken as-is.
unsigned resolve_jobs(unsigned jobs);

/// Called on every freshly spawned pool worker, before it runs any work,
/// with the worker's index within its pool. Higher layers use it to label
/// worker threads without support depending on them (obs names trace rows
/// "worker-<i>" this way). Must be async-signal-ish tame: no throwing, no
/// reliance on pool state. nullptr (the default) disables the hook.
using ThreadStartHook = void (*)(unsigned worker_index);
void set_thread_start_hook(ThreadStartHook hook);
[[nodiscard]] ThreadStartHook thread_start_hook();

/// Timing for one batch participant (a pool worker or the calling thread).
/// `queue_wait_ms` is time spent blocked on pool bookkeeping (the rare
/// error/stats mutex — index claiming itself is a lock-free fetch-add and
/// contributes nothing), `busy_ms` time inside user work, `claimed` how many
/// indices this participant ran — together they expose contention and load
/// imbalance per batch.
struct WorkerBatchStats {
    double queue_wait_ms = 0.0;
    double busy_ms = 0.0;
    std::size_t claimed = 0;
};

/// One completed `for_each_index` batch: total size, wall time, and one
/// entry per participant that entered the batch (including zero-claim
/// wakeups — a wasted wakeup is contention signal, not noise).
struct BatchStats {
    std::size_t n = 0;
    double wall_ms = 0.0;
    std::vector<WorkerBatchStats> participants;
};

/// Observer for completed batches, same pattern as ThreadStartHook: higher
/// layers (obs) turn these into `parallel.*` metrics without support
/// depending on them. Called on the batch's calling thread, after the batch
/// fully drains and outside pool locks. When unset (the default), batches
/// skip all timing work. Must not re-enter the pool.
using BatchStatsHook = void (*)(const BatchStats&);
void set_batch_stats_hook(BatchStatsHook hook);
[[nodiscard]] BatchStatsHook batch_stats_hook();

class ThreadPool {
public:
    /// Spawns `workers` threads. The calling thread also participates in
    /// each batch, so a pool driving `--jobs N` wants `N - 1` workers;
    /// `workers == 0` means strictly sequential execution on the caller.
    explicit ThreadPool(unsigned workers);
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] unsigned workers() const {
        return static_cast<unsigned>(threads_.size());
    }

    /// Runs `fn(i)` for every i in [0, n), blocking until all complete.
    /// Not reentrant: one batch at a time per pool.
    void for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn);

private:
    struct Batch {
        std::size_t n = 0;
        const std::function<void(std::size_t)>* fn = nullptr;
        /// First unclaimed index. Claiming is a lock-free fetch-add: workers
        /// never serialize on mutex_ to obtain work, only to report errors
        /// and (when timed) to append their participant stats.
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> completed{0};  // finished fn() calls
        std::size_t active = 0;     // workers currently inside (guarded by mutex_)
        bool timed = false;         // collect WorkerBatchStats (hook installed)
        std::vector<WorkerBatchStats> participants;  // guarded by mutex_
    };

    void worker_loop();
    /// Claims and runs indices until the batch is exhausted. Returns with
    /// mutex_ unheld; errors land in errors_.
    void drain(Batch& batch);

    std::mutex mutex_;
    std::condition_variable work_cv_;  // workers: a batch has unclaimed work
    std::condition_variable done_cv_;  // caller: batch fully completed
    std::vector<std::thread> threads_;
    Batch* batch_ = nullptr;  // non-null while a batch is in flight
    bool stop_ = false;
    std::vector<std::pair<std::size_t, std::exception_ptr>> errors_;
};

/// One-shot helper: runs `fn(i)` over [0, n) with `jobs` total threads
/// (a transient pool of jobs-1 workers; jobs <= 1 runs inline). Analyzer
/// holds a longer-lived ThreadPool instead to amortize thread start-up
/// across pipeline stages.
void parallel_for(unsigned jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// Maps [0, n) through `fn` into a pre-sized vector; out[i] = fn(i).
/// Deterministic for any thread count. T must be default-constructible.
template <typename T, typename Fn>
std::vector<T> parallel_map(unsigned jobs, std::size_t n, Fn&& fn) {
    std::vector<T> out(n);
    parallel_for(jobs, n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
}

}  // namespace extractocol::support
