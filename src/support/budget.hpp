// Deterministic per-app analysis budgets (fault-isolation layer).
//
// A BudgetTracker bounds the total abstract work one app may consume across
// the whole pipeline (taint worklist iterations, signature-builder statement
// executions, interpreter steps) with ONE invariant: the set of work units
// whose results count — and therefore the report — is byte-identical for
// every `--jobs` value.
//
// The problem with a naive shared atomic is scheduling: with 8 workers the
// counter crosses the limit at a different unit than with 1, so the report
// would depend on thread timing. Instead the tracker charges units in
// *index order* at a fold frontier:
//
//   * a parallel stage (`stage(n)`) gives every unit a slot; workers record
//     each unit's deterministic step count when it finishes;
//   * the frontier folds slot i into the running total only after slots
//     0..i-1 are folded, so the unit at which the budget crosses the limit
//     depends only on the per-unit costs (which are sequential computations,
//     independent of scheduling) — never on which worker finished first;
//   * results of units past the crossing point are dropped by the caller
//     (`finish()` returns the cut); units that have not *started* once the
//     budget is exhausted are skipped outright (`should_skip()`), which is
//     safe because the frontier can only cross after every unit below the
//     cut has finished — a skipped unit is always past the cut.
//
// Wall-clock deadlines are deliberately NOT offered: a timeout fires at a
// machine-dependent point and would break report determinism. Steps are the
// budget currency precisely because they are reproducible.
#pragma once

#include <cstddef>
#include <limits>
#include <mutex>
#include <vector>

namespace extractocol::support {

class BudgetTracker {
public:
    /// `max_total_steps` == 0 means unlimited (the tracker never exhausts).
    explicit BudgetTracker(std::size_t max_total_steps = 0)
        : max_(max_total_steps) {}
    BudgetTracker(const BudgetTracker&) = delete;
    BudgetTracker& operator=(const BudgetTracker&) = delete;

    [[nodiscard]] bool limited() const { return max_ != 0; }
    [[nodiscard]] std::size_t max_total_steps() const { return max_; }

    /// Sticky: set the moment the in-order fold crosses the limit, never
    /// cleared. Safe to poll from worker threads.
    [[nodiscard]] bool exhausted() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return exhausted_;
    }

    /// Steps charged so far (folded units only — work past the cut is never
    /// counted, so the value is jobs-independent).
    [[nodiscard]] std::size_t steps_used() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return used_;
    }

    /// Steps still available; SIZE_MAX when unlimited, 0 when exhausted.
    [[nodiscard]] std::size_t remaining() const {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!limited()) return std::numeric_limits<std::size_t>::max();
        if (exhausted_ || used_ >= max_) return 0;
        return max_ - used_;
    }

    /// Sequential charge from a single-threaded call site (whole-phase costs,
    /// interpreter events). The charge that crosses the limit is still
    /// counted — its work already happened and its results are kept. Returns
    /// false once the budget is exhausted.
    bool charge(std::size_t steps) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (exhausted_) return false;
        used_ += steps;
        if (limited() && used_ > max_) exhausted_ = true;
        return !exhausted_;
    }

    /// One data-parallel pipeline stage of `units` index-addressed work
    /// items. Protocol (see file header): workers call `should_skip()`
    /// before starting a unit and `record(i, steps)` after finishing it;
    /// the caller, after the barrier, calls `finish()` and treats units at
    /// indices >= the returned cut as budget-exhausted.
    class Stage {
    public:
        /// True when the budget was exhausted before this unit started; the
        /// unit must not run (its results would be dropped anyway).
        [[nodiscard]] bool should_skip() const { return tracker_->exhausted(); }

        /// Records unit `index`'s deterministic step count and folds every
        /// ready unit, in index order, into the tracker.
        void record(std::size_t index, std::size_t steps) {
            std::lock_guard<std::mutex> lock(tracker_->mutex_);
            steps_[index] = steps;
            done_[index] = true;
            advance_locked();
        }

        /// Folds any remaining completed units and returns the cut: units
        /// [0, cut) count toward the report, [cut, n) are dropped. Equal to
        /// n when the budget never exhausted.
        [[nodiscard]] std::size_t finish() {
            std::lock_guard<std::mutex> lock(tracker_->mutex_);
            advance_locked();
            return tracker_->exhausted_ ? cut_ : frontier_;
        }

    private:
        friend class BudgetTracker;
        Stage(BudgetTracker& tracker, std::size_t units)
            : tracker_(&tracker), steps_(units, 0), done_(units, 0) {
            std::lock_guard<std::mutex> lock(tracker_->mutex_);
            // Already exhausted on entry: every unit of this stage is past
            // the cut.
            if (tracker_->exhausted_) cut_ = 0;
        }

        /// Requires tracker_->mutex_. Stops folding once exhausted: later
        /// units are dropped whether they ran or not, so their (scheduling-
        /// dependent) completion must not influence any observable state.
        void advance_locked() {
            while (!tracker_->exhausted_ && frontier_ < done_.size() &&
                   done_[frontier_]) {
                tracker_->used_ += steps_[frontier_];
                ++frontier_;
                if (tracker_->limited() && tracker_->used_ > tracker_->max_) {
                    tracker_->exhausted_ = true;
                    // The crossing unit is kept: its work is counted and its
                    // partial results belong in the degraded report.
                    cut_ = frontier_;
                }
            }
        }

        BudgetTracker* tracker_;
        std::vector<std::size_t> steps_;
        std::vector<char> done_;  // vector<bool> bit-packing is not thread-hostile
                                  // here (mutex-guarded) but char keeps it simple
        std::size_t frontier_ = 0;
        std::size_t cut_ = std::numeric_limits<std::size_t>::max();
    };

    [[nodiscard]] Stage stage(std::size_t units) { return Stage(*this, units); }

private:
    friend class Stage;
    const std::size_t max_;
    mutable std::mutex mutex_;
    std::size_t used_ = 0;
    bool exhausted_ = false;
};

}  // namespace extractocol::support
