// Stable hashing helpers: FNV-1a for strings (used for deterministic
// obfuscated identifier generation and corpus randomness) plus hash_combine
// for composite analysis keys.
//
// Stability contract: every hash produced here depends only on the *bytes*
// of its input — never on std::hash, pointer values, or the standard
// library's implementation — so hash-keyed containers bucket identically on
// every platform/stdlib and nothing hash-derived can drift into report
// output. (The old hash_combine routed through std::hash<T>, which violated
// this file's own contract; see DESIGN.md §13.)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

namespace extractocol {

/// 64-bit FNV-1a. Stable across platforms/runs, unlike std::hash.
constexpr std::uint64_t fnv1a(std::string_view s) {
    std::uint64_t h = 14695981039346656037ull;
    for (char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 1099511628211ull;
    }
    return h;
}

/// 64-bit FNV-1a with a caller-supplied basis. Seeding with independent
/// bases yields independent hash streams over the same bytes. Same
/// stability contract as fnv1a — but the FNV family is NOT
/// collision-resistant (collisions are adversarially constructible), so it
/// is for checksums and bucketing only; anything that decides *identity*
/// of persisted content must use support/sha256.hpp (the report cache key
/// does).
constexpr std::uint64_t fnv1a_seeded(std::string_view s, std::uint64_t basis) {
    std::uint64_t h = basis;
    for (char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 1099511628211ull;
    }
    return h;
}

/// SplitMix64 finalizer: a strong, stable 64-bit integer mix.
constexpr std::uint64_t mix64(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/// Stable per-value hash feeding hash_combine: integrals/enums mix their
/// bits, strings hash their bytes. Anything else is rejected at compile time
/// — add an explicit overload rather than silently falling back to
/// std::hash (which is what made the old version unstable).
template <typename T>
constexpr std::uint64_t stable_hash(const T& v) {
    if constexpr (std::is_enum_v<T>) {
        return mix64(static_cast<std::uint64_t>(
            static_cast<std::underlying_type_t<T>>(v)));
    } else if constexpr (std::is_integral_v<T>) {
        return mix64(static_cast<std::uint64_t>(v));
    } else if constexpr (std::is_convertible_v<const T&, std::string_view>) {
        return fnv1a(std::string_view(v));
    } else {
        static_assert(std::is_integral_v<T>,
                      "stable_hash: provide an overload for this type");
        return 0;
    }
}

/// Boost-style hash combining for unordered-map keys over composites, on
/// stable_hash instead of std::hash.
template <typename T>
constexpr void hash_combine(std::size_t& seed, const T& v) {
    seed ^= static_cast<std::size_t>(stable_hash(v)) + 0x9e3779b97f4a7c15ull +
            (seed << 6) + (seed >> 2);
}

/// Tiny deterministic PRNG (splitmix64) used by the corpus generator so the
/// synthetic apps are identical on every run and platform.
class SplitMix64 {
public:
    explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

    constexpr std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        return mix64(z);
    }

    /// Value in [0, bound). bound must be > 0.
    ///
    /// Deliberately keeps the modulo reduction: it has bias for bounds that
    /// do not divide 2^64 (< 2^-40 for the small bounds used here), but its
    /// output sequence is frozen — the committed corpus, golden tests, and
    /// property-test corpora are generated from it, so changing the mapping
    /// would silently regenerate every derived artifact. support_test pins
    /// the exact sequence. New call sites that care about uniformity should
    /// use next_below_unbiased instead.
    constexpr std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

    /// Uniform value in [0, bound) via rejection sampling (no modulo bias).
    /// Consumes a variable number of raw draws, so it does NOT produce the
    /// same stream as next_below — opt in only where no committed artifact
    /// pins the biased sequence.
    constexpr std::uint64_t next_below_unbiased(std::uint64_t bound) {
        // Rejection zone: the top partial copy of [0, bound) in 2^64.
        const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound) - 1;
        for (;;) {
            std::uint64_t v = next();
            if (v <= limit) return v % bound;
        }
    }

private:
    std::uint64_t state_;
};

}  // namespace extractocol
