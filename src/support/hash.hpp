// Stable hashing helpers: FNV-1a for strings (used for deterministic
// obfuscated identifier generation and corpus randomness) plus hash_combine
// for composite analysis keys.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

namespace extractocol {

/// 64-bit FNV-1a. Stable across platforms/runs, unlike std::hash.
constexpr std::uint64_t fnv1a(std::string_view s) {
    std::uint64_t h = 14695981039346656037ull;
    for (char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 1099511628211ull;
    }
    return h;
}

/// Boost-style hash combining for unordered-map keys over composites.
template <typename T>
void hash_combine(std::size_t& seed, const T& v) {
    seed ^= std::hash<T>{}(v) + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

/// Tiny deterministic PRNG (splitmix64) used by the corpus generator so the
/// synthetic apps are identical on every run and platform.
class SplitMix64 {
public:
    explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

    constexpr std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /// Uniform value in [0, bound). bound must be > 0.
    constexpr std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

private:
    std::uint64_t state_;
};

}  // namespace extractocol
