#include "support/sha256.hpp"

#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define EXTRACTOCOL_SHA256_X86 1
#endif

namespace extractocol::support {

namespace {

constexpr std::uint32_t kRoundConstants[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu, 0x59f111f1u,
    0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u, 0x243185beu, 0x550c7dc3u,
    0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u, 0xc19bf174u, 0xe49b69c1u, 0xefbe4786u,
    0x0fc19dc6u, 0x240ca1ccu, 0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau,
    0x983e5152u, 0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu, 0x53380d13u,
    0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u, 0xa2bfe8a1u, 0xa81a664bu,
    0xc24b8b70u, 0xc76c51a3u, 0xd192e819u, 0xd6990624u, 0xf40e3585u, 0x106aa070u,
    0x19a4c116u, 0x1e376c08u, 0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au,
    0x5b9cca4fu, 0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u,
};

constexpr std::uint32_t rotr(std::uint32_t x, unsigned n) {
    return (x >> n) | (x << (32 - n));
}

/// Portable FIPS 180-4 compression over `count` consecutive 64-byte blocks.
void compress_portable(std::uint32_t h[8], const std::uint8_t* blocks,
                       std::size_t count) {
    for (std::size_t block_index = 0; block_index < count; ++block_index) {
        const std::uint8_t* block = blocks + 64 * block_index;
        std::uint32_t w[64];
        for (int i = 0; i < 16; ++i) {
            w[i] = (std::uint32_t(block[4 * i]) << 24) |
                   (std::uint32_t(block[4 * i + 1]) << 16) |
                   (std::uint32_t(block[4 * i + 2]) << 8) |
                   std::uint32_t(block[4 * i + 3]);
        }
        for (int i = 16; i < 64; ++i) {
            std::uint32_t s0 =
                rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
            std::uint32_t s1 =
                rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16] + s0 + w[i - 7] + s1;
        }
        std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
        std::uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
        for (int i = 0; i < 64; ++i) {
            std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
            std::uint32_t ch = (e & f) ^ (~e & g);
            std::uint32_t t1 = hh + s1 + ch + kRoundConstants[i] + w[i];
            std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
            std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
            std::uint32_t t2 = s0 + maj;
            hh = g;
            g = f;
            f = e;
            e = d + t1;
            d = c;
            c = b;
            b = a;
            a = t1 + t2;
        }
        h[0] += a;
        h[1] += b;
        h[2] += c;
        h[3] += d;
        h[4] += e;
        h[5] += f;
        h[6] += g;
        h[7] += hh;
    }
}

#ifdef EXTRACTOCOL_SHA256_X86

// Helpers for the SHA-NI path. GCC requires the target attribute on every
// function that touches the intrinsics (lambdas inside a target function do
// not inherit it and fail to inline).
__attribute__((target("sha,sse4.1"), always_inline)) inline __m128i k4(int i) {
    return _mm_set_epi32(static_cast<int>(kRoundConstants[i + 3]),
                         static_cast<int>(kRoundConstants[i + 2]),
                         static_cast<int>(kRoundConstants[i + 1]),
                         static_cast<int>(kRoundConstants[i]));
}

/// Four rounds over the 4-word group `words` (final w[i..i+3] values).
__attribute__((target("sha,sse4.1"), always_inline)) inline void rounds4(
    __m128i& state0, __m128i& state1, __m128i words, int i) {
    __m128i msg = _mm_add_epi32(words, k4(i));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
}

/// One message-schedule step: extends `target` from the two newest 4-word
/// groups (prev, newest), matching w[i] = w[i-16] + s0 + w[i-7] + s1.
__attribute__((target("sha,sse4.1"), always_inline)) inline void extend4(
    __m128i& target, __m128i prev, __m128i newest) {
    target = _mm_add_epi32(target, _mm_alignr_epi8(newest, prev, 4));
    target = _mm_sha256msg2_epu32(target, newest);
}

/// SHA-NI compression (the Gulley/Walton x86 schedule). ~10x the portable
/// throughput; matters because the cache keys EVERY input on EVERY run —
/// warm lookups included — so digest speed is on the bench_warm_reanalysis
/// critical path. Correctness is pinned by the same NIST vectors as the
/// portable path (support_test runs both when the CPU allows).
__attribute__((target("sha,sse4.1"))) void compress_shani(
    std::uint32_t h[8], const std::uint8_t* blocks, std::size_t count) {
    const __m128i kShuffle =
        _mm_set_epi64x(0x0c0d0e0f08090a0bll, 0x0405060700010203ll);

    // h[] is DCBA/HGFE word order; the sha256rnds2 instruction wants the
    // state packed as ABEF/CDGH.
    __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&h[0]));
    __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&h[4]));
    tmp = _mm_shuffle_epi32(tmp, 0xB1);
    state1 = _mm_shuffle_epi32(state1, 0x1B);
    __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);
    state1 = _mm_blend_epi16(state1, tmp, 0xF0);

    for (std::size_t block_index = 0; block_index < count; ++block_index) {
        const auto* data =
            reinterpret_cast<const __m128i*>(blocks + 64 * block_index);
        const __m128i abef_save = state0;
        const __m128i cdgh_save = state1;
        __m128i msg0, msg1, msg2, msg3;

        msg0 = _mm_shuffle_epi8(_mm_loadu_si128(data + 0), kShuffle);
        msg1 = _mm_shuffle_epi8(_mm_loadu_si128(data + 1), kShuffle);
        msg2 = _mm_shuffle_epi8(_mm_loadu_si128(data + 2), kShuffle);
        msg3 = _mm_shuffle_epi8(_mm_loadu_si128(data + 3), kShuffle);

        // In every group below, extend() reads the prior-group register
        // BEFORE that register's sha256msg1 partial update overwrites its
        // final word values.
        rounds4(state0, state1, msg0, 0);
        rounds4(state0, state1, msg1, 4);
        msg0 = _mm_sha256msg1_epu32(msg0, msg1);
        rounds4(state0, state1, msg2, 8);
        msg1 = _mm_sha256msg1_epu32(msg1, msg2);
        rounds4(state0, state1, msg3, 12);
        extend4(msg0, msg2, msg3);
        msg2 = _mm_sha256msg1_epu32(msg2, msg3);

        // Uniform 16-round body; in the last iteration the trailing
        // schedule ops compute words past w[63], which are never used.
        for (int i = 16; i < 64; i += 16) {
            rounds4(state0, state1, msg0, i);
            extend4(msg1, msg3, msg0);
            msg3 = _mm_sha256msg1_epu32(msg3, msg0);
            rounds4(state0, state1, msg1, i + 4);
            extend4(msg2, msg0, msg1);
            msg0 = _mm_sha256msg1_epu32(msg0, msg1);
            rounds4(state0, state1, msg2, i + 8);
            extend4(msg3, msg1, msg2);
            msg1 = _mm_sha256msg1_epu32(msg1, msg2);
            rounds4(state0, state1, msg3, i + 12);
            extend4(msg0, msg2, msg3);
            msg2 = _mm_sha256msg1_epu32(msg2, msg3);
        }

        state0 = _mm_add_epi32(state0, abef_save);
        state1 = _mm_add_epi32(state1, cdgh_save);
    }

    tmp = _mm_shuffle_epi32(state0, 0x1B);
    state1 = _mm_shuffle_epi32(state1, 0xB1);
    state0 = _mm_blend_epi16(tmp, state1, 0xF0);
    state1 = _mm_alignr_epi8(state1, tmp, 8);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&h[0]), state0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&h[4]), state1);
}

#endif  // EXTRACTOCOL_SHA256_X86

using CompressFn = void (*)(std::uint32_t[8], const std::uint8_t*, std::size_t);

CompressFn resolve_compress() {
#ifdef EXTRACTOCOL_SHA256_X86
    if (__builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1")) {
        return compress_shani;
    }
#endif
    return compress_portable;
}

// Resolved once; both implementations produce identical digests (pinned by
// the NIST vectors in support_test), so the choice is invisible — entries
// keyed on one machine are found on any other.
const CompressFn g_compress = resolve_compress();

std::array<std::uint8_t, 32> digest_with(CompressFn compress, std::string_view data) {
    std::uint32_t h[8] = {0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
                          0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(data.data());
    std::size_t full_blocks = data.size() / 64;
    compress(h, bytes, full_blocks);

    // Final block(s): remaining bytes, 0x80, zero padding, 64-bit bit length.
    std::uint8_t tail[128] = {};
    std::size_t rest = data.size() - 64 * full_blocks;
    std::memcpy(tail, bytes + 64 * full_blocks, rest);
    tail[rest] = 0x80;
    std::size_t tail_len = rest + 1 + 8 <= 64 ? 64 : 128;
    std::uint64_t bit_length = std::uint64_t(data.size()) * 8;
    for (int i = 0; i < 8; ++i) {
        tail[tail_len - 1 - i] = static_cast<std::uint8_t>(bit_length >> (8 * i));
    }
    compress(h, tail, tail_len / 64);

    std::array<std::uint8_t, 32> digest;
    for (int i = 0; i < 8; ++i) {
        digest[4 * i] = static_cast<std::uint8_t>(h[i] >> 24);
        digest[4 * i + 1] = static_cast<std::uint8_t>(h[i] >> 16);
        digest[4 * i + 2] = static_cast<std::uint8_t>(h[i] >> 8);
        digest[4 * i + 3] = static_cast<std::uint8_t>(h[i]);
    }
    return digest;
}

}  // namespace

std::array<std::uint8_t, 32> sha256(std::string_view data) {
    return digest_with(g_compress, data);
}

namespace detail {
std::array<std::uint8_t, 32> sha256_portable(std::string_view data) {
    return digest_with(compress_portable, data);
}
}  // namespace detail

namespace {

std::string hex_prefix(const std::array<std::uint8_t, 32>& digest, std::size_t bytes) {
    static constexpr char kHex[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes * 2);
    for (std::size_t i = 0; i < bytes; ++i) {
        out.push_back(kHex[digest[i] >> 4]);
        out.push_back(kHex[digest[i] & 0xf]);
    }
    return out;
}

}  // namespace

std::string sha256_hex(std::string_view data) { return hex_prefix(sha256(data), 32); }

std::string sha256_hex128(std::string_view data) {
    return hex_prefix(sha256(data), 16);
}

}  // namespace extractocol::support
