// SHA-256 (FIPS 180-4). The content-addressed cache keys entries by a
// truncation of this digest: unlike FNV-1a (fine as a fast accidental-
// corruption checksum, but collisions are adversarially constructible),
// SHA-256 is collision-resistant, so two different inputs cannot be made
// to share a cache entry. Same stability contract as support/hash.hpp:
// output depends only on the input bytes.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace extractocol::support {

/// Full 32-byte SHA-256 digest of `data`.
[[nodiscard]] std::array<std::uint8_t, 32> sha256(std::string_view data);

/// Lowercase-hex digest, 64 characters.
[[nodiscard]] std::string sha256_hex(std::string_view data);

/// Lowercase-hex of the first 16 digest bytes (128 bits, 32 characters).
/// Truncating SHA-256 preserves collision resistance at the truncated
/// width — the cache key derivation (src/cache) uses exactly this.
[[nodiscard]] std::string sha256_hex128(std::string_view data);

namespace detail {
/// The portable compression path, bypassing the hardware (SHA-NI) dispatch.
/// Test-only: lets support_test pin the fallback against the same NIST
/// vectors on machines where the dispatcher would always pick the fast
/// path. Both paths must agree byte-for-byte — entries keyed by one build
/// must be found by every other.
[[nodiscard]] std::array<std::uint8_t, 32> sha256_portable(std::string_view data);
}  // namespace detail

}  // namespace extractocol::support
