// Result<T>: a lightweight expected-like type used across the library for
// recoverable errors (parse failures, malformed containers, lookup misses).
// We deliberately avoid exceptions on these paths: callers of parsers and
// analyses want to branch on failure, not unwind.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace extractocol {

/// Error payload carried by a failed Result. `context` accumulates
/// outer-to-inner annotations joined by ": ".
struct Error {
    std::string message;

    Error() = default;
    explicit Error(std::string msg) : message(std::move(msg)) {}

    /// Returns a copy of this error with an outer context prefix.
    [[nodiscard]] Error with_context(const std::string& ctx) const {
        return Error(ctx + ": " + message);
    }
};

template <typename T>
class [[nodiscard]] Result {
public:
    Result(T value) : storage_(std::move(value)) {}  // NOLINT: implicit by design
    Result(Error error) : storage_(std::move(error)) {}  // NOLINT

    [[nodiscard]] bool ok() const { return std::holds_alternative<T>(storage_); }
    explicit operator bool() const { return ok(); }

    [[nodiscard]] T& value() & {
        assert(ok());
        return std::get<T>(storage_);
    }
    [[nodiscard]] const T& value() const& {
        assert(ok());
        return std::get<T>(storage_);
    }
    [[nodiscard]] T&& take() && {
        assert(ok());
        return std::get<T>(std::move(storage_));
    }

    [[nodiscard]] const Error& error() const {
        assert(!ok());
        return std::get<Error>(storage_);
    }

    /// Value access with a fallback for the error case.
    [[nodiscard]] T value_or(T fallback) const {
        return ok() ? std::get<T>(storage_) : std::move(fallback);
    }

    /// Re-wraps the error (if any) with an outer context annotation.
    [[nodiscard]] Result<T> context(const std::string& ctx) && {
        if (ok()) return std::move(*this);
        return Result<T>(error().with_context(ctx));
    }

private:
    std::variant<T, Error> storage_;
};

/// Result for operations with no payload.
class [[nodiscard]] Status {
public:
    Status() = default;
    Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT

    [[nodiscard]] bool ok() const { return !failed_; }
    explicit operator bool() const { return ok(); }
    [[nodiscard]] const Error& error() const {
        assert(failed_);
        return error_;
    }

    static Status success() { return Status(); }

private:
    Error error_;
    bool failed_ = false;
};

}  // namespace extractocol
