#include "interp/interpreter.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"
#include "text/json.hpp"
#include "text/uri.hpp"
#include "text/xml.hpp"

namespace extractocol::interp {

using namespace xir;

// ------------------------------------------------------- scripted server --

void ScriptedServer::route(std::string path_prefix, Handler handler) {
    routes_.emplace_back(std::move(path_prefix), std::move(handler));
}

void ScriptedServer::route_fixed(std::string path_prefix, http::BodyKind kind,
                                 std::string body) {
    http::Response response;
    response.status = 200;
    response.body_kind = kind;
    response.body = std::move(body);
    route(std::move(path_prefix), [response](const http::Request&) { return response; });
}

http::Response ScriptedServer::handle(const http::Request& request) {
    std::string key = request.uri.host + request.uri.path;
    for (const auto& [prefix, handler] : routes_) {
        if (strings::starts_with(key, prefix)) return handler(request);
    }
    http::Response not_found;
    not_found.status = 404;
    return not_found;
}

bool event_enabled(EventKind kind, FuzzMode mode) {
    switch (kind) {
        case EventKind::kOnCreate:
        case EventKind::kOnClick:
            return true;
        case EventKind::kOnCustomUi:
        case EventKind::kOnLogin:
        case EventKind::kOnLocation:
            return mode != FuzzMode::kAuto;
        case EventKind::kOnTimer:
        case EventKind::kOnServerPush:
        case EventKind::kOnAction:
            return mode == FuzzMode::kFull;
        case EventKind::kOnIntent:
            // Intents fire only when app code sends them (startActivity),
            // never as a directly-driven fuzz event.
            return false;
    }
    return false;
}

// ----------------------------------------------------------------- values --

namespace {

struct RtObject;
using RtObjectPtr = std::shared_ptr<RtObject>;

struct RtValue {
    enum class Kind { kNull, kInt, kDouble, kBool, kString, kObject };
    Kind kind = Kind::kNull;
    std::int64_t int_value = 0;
    double double_value = 0;
    bool bool_value = false;
    std::string string_value;
    RtObjectPtr object;

    static RtValue null() { return {}; }
    static RtValue of_int(std::int64_t v) {
        RtValue r;
        r.kind = Kind::kInt;
        r.int_value = v;
        return r;
    }
    static RtValue of_double(double v) {
        RtValue r;
        r.kind = Kind::kDouble;
        r.double_value = v;
        return r;
    }
    static RtValue of_bool(bool v) {
        RtValue r;
        r.kind = Kind::kBool;
        r.bool_value = v;
        return r;
    }
    static RtValue of_string(std::string v) {
        RtValue r;
        r.kind = Kind::kString;
        r.string_value = std::move(v);
        return r;
    }
    static RtValue of_object(RtObjectPtr v) {
        RtValue r;
        r.kind = Kind::kObject;
        r.object = std::move(v);
        return r;
    }
    [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
    [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
    [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
};

/// One heap object: app-level fields plus builtin payloads for modeled
/// library classes (string builders, JSON documents, requests...).
struct RtObject {
    std::string class_name;
    std::map<std::string, RtValue> fields;

    std::string buffer;             // StringBuilder / entity / stream content
    std::size_t read_pos = 0;       // readLine cursor
    text::Json json;                // JSONObject / JSONArray / ContentValues
    std::vector<RtValue> list;      // lists / NodeLists

    // HTTP request under construction.
    std::string req_method = "GET";
    std::string url;
    std::vector<http::Header> headers;
    std::string body;
    http::BodyKind body_kind = http::BodyKind::kNone;
    RtObjectPtr listener;           // volley-style response listener

    http::Response response;        // response payload

    // Cursor rows.
    std::vector<std::map<std::string, std::string>> rows;
    std::ptrdiff_t row = -1;

    // XML document/element.
    std::shared_ptr<text::XmlElement> xml_root;
    const text::XmlElement* xml_node = nullptr;
};

std::string rt_to_string(const RtValue& v) {
    switch (v.kind) {
        case RtValue::Kind::kNull: return "null";
        case RtValue::Kind::kInt: return std::to_string(v.int_value);
        case RtValue::Kind::kDouble: {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.4f", v.double_value);
            return buf;
        }
        case RtValue::Kind::kBool: return v.bool_value ? "true" : "false";
        case RtValue::Kind::kString: return v.string_value;
        case RtValue::Kind::kObject:
            if (!v.object) return "null";
            if (v.object->class_name == "java.lang.StringBuilder" ||
                v.object->class_name == "java.lang.StringBuffer") {
                return v.object->buffer;
            }
            if (v.object->json.is_object() || v.object->json.is_array()) {
                return v.object->json.dump();
            }
            if (!v.object->buffer.empty()) return v.object->buffer;
            return v.object->class_name;
    }
    return "";
}

RtValue json_to_rt(const text::Json& v) {
    switch (v.kind()) {
        case text::Json::Kind::kNull: return RtValue::null();
        case text::Json::Kind::kBool: return RtValue::of_bool(v.as_bool());
        case text::Json::Kind::kInt: return RtValue::of_int(v.as_int());
        case text::Json::Kind::kDouble: return RtValue::of_double(v.as_double());
        case text::Json::Kind::kString: return RtValue::of_string(v.as_string());
        default: {
            auto obj = std::make_shared<RtObject>();
            obj->class_name =
                v.is_array() ? "org.json.JSONArray" : "org.json.JSONObject";
            obj->json = v;
            return RtValue::of_object(obj);
        }
    }
}

}  // namespace

// ------------------------------------------------------------------ impl --

struct Interpreter::Impl {
    const Program* program;
    FakeServer* server;
    InterpreterOptions options;

    http::Trace trace;
    std::map<std::string, RtValue> statics;  // "Cls.field"
    std::map<std::string, std::vector<std::map<std::string, std::string>>> db;
    std::map<std::string, std::string> prefs;
    std::map<std::string, RtObjectPtr> singletons;  // persistent activity objects
    std::string current_trigger;
    std::size_t steps_left = 0;
    std::size_t depth = 0;
    // Hoisted instrument handles: the statement loop is the interpreter's
    // hot path, so each tick is one relaxed atomic add.
    obs::Counter* stmts_evaluated = &obs::counter("interp.stmts_evaluated");
    obs::Counter* events_fired = &obs::counter("interp.events_fired");
    // --profile: per-method statement tally, charged per frame (one map
    // update per call, not per statement) and flushed to the global
    // profiler after each fuzz pass.
    bool profiling = false;
    std::map<const Method*, std::uint64_t> profile_stmts;

    Impl(const Program& p, FakeServer& s, InterpreterOptions o)
        : program(&p), server(&s), options(o) {
        trace.app = p.app_name;
        profiling = obs::Profiler::global().enabled();
    }

    void flush_profile() {
        if (!profiling || profile_stmts.empty()) return;
        obs::Profiler& profiler = obs::Profiler::global();
        for (const auto& [method, count] : profile_stmts) {
            profiler.charge_method(
                obs::profile_method_key(program->app_name, method->ref().qualified()),
                0, count);
        }
        profile_stmts.clear();
    }

    RtObjectPtr singleton(const std::string& class_name) {
        auto it = singletons.find(class_name);
        if (it != singletons.end()) return it->second;
        auto obj = std::make_shared<RtObject>();
        obj->class_name = class_name;
        singletons[class_name] = obj;
        return obj;
    }

    // ------------------------------------------------------ http plumbing --
    RtObjectPtr perform(const RtObjectPtr& req) {
        auto response_obj = std::make_shared<RtObject>();
        response_obj->class_name = "org.apache.http.HttpResponse";
        auto uri = text::parse_uri(req->url);
        if (!uri.ok()) {
            log::debug().kv("trigger", current_trigger)
                << "interpreter: unparsable url '" << req->url << "'";
            response_obj->response.status = 0;
            return response_obj;
        }
        http::Transaction txn;
        txn.request.method =
            http::parse_method(req->req_method).value_or(http::Method::kGet);
        txn.request.uri = std::move(uri).take();
        txn.request.headers = req->headers;
        txn.request.body = req->body;
        txn.request.body_kind = req->body.empty() ? http::BodyKind::kNone
                                                  : http::classify_body(req->body);
        txn.response = server->handle(txn.request);
        txn.trigger = current_trigger;
        response_obj->response = txn.response;
        trace.transactions.push_back(std::move(txn));
        return response_obj;
    }

    // ------------------------------------------------------ method calls --
    RtValue call(const Method& method, std::vector<RtValue> args) {
        if (depth > options.max_call_depth) return RtValue::null();
        ++depth;
        std::vector<RtValue> env(method.locals.size());
        for (std::size_t i = 0; i < args.size() && i < method.param_count; ++i) {
            env[i] = std::move(args[i]);
        }
        RtValue result;
        BlockId block = 0;
        std::uint64_t frame_stmts = 0;
        while (true) {
            if (block >= method.blocks.size()) break;
            const auto& stmts = method.blocks[block].statements;
            std::optional<BlockId> next;
            bool returned = false;
            for (const auto& stmt : stmts) {
                if (steps_left == 0) {
                    log::warn().kv("method", method.ref().qualified())
                        << "interpreter: step budget exhausted";
                    --depth;
                    if (profiling && frame_stmts > 0) profile_stmts[&method] += frame_stmts;
                    return result;
                }
                --steps_left;
                stmts_evaluated->add(1);
                ++frame_stmts;
                if (exec_stmt(method, stmt, env, next, returned, result)) continue;
            }
            if (returned || !next) break;
            block = *next;
        }
        --depth;
        if (profiling && frame_stmts > 0) profile_stmts[&method] += frame_stmts;
        return result;
    }

    RtValue operand(const Method& method, const std::vector<RtValue>& env,
                    const Operand& op) {
        (void)method;
        if (op.is_local()) return env[op.local];
        switch (op.constant.kind) {
            case Constant::Kind::kNull: return RtValue::null();
            case Constant::Kind::kInt: return RtValue::of_int(op.constant.int_value);
            case Constant::Kind::kDouble:
                return RtValue::of_double(op.constant.double_value);
            case Constant::Kind::kString:
                return RtValue::of_string(op.constant.string_value);
            case Constant::Kind::kBool: return RtValue::of_bool(op.constant.bool_value);
        }
        return RtValue::null();
    }

    static bool rt_equal(const RtValue& a, const RtValue& b) {
        if (a.kind != b.kind) {
            // null comparisons against object/string.
            if (a.is_null() || b.is_null()) {
                const RtValue& other = a.is_null() ? b : a;
                if (other.is_object()) return other.object == nullptr;
                return false;
            }
            // int/double cross compare
            if ((a.kind == RtValue::Kind::kInt && b.kind == RtValue::Kind::kDouble) ||
                (a.kind == RtValue::Kind::kDouble && b.kind == RtValue::Kind::kInt)) {
                double av = a.kind == RtValue::Kind::kInt
                                ? static_cast<double>(a.int_value)
                                : a.double_value;
                double bv = b.kind == RtValue::Kind::kInt
                                ? static_cast<double>(b.int_value)
                                : b.double_value;
                return av == bv;
            }
            return false;
        }
        switch (a.kind) {
            case RtValue::Kind::kNull: return true;
            case RtValue::Kind::kInt: return a.int_value == b.int_value;
            case RtValue::Kind::kDouble: return a.double_value == b.double_value;
            case RtValue::Kind::kBool: return a.bool_value == b.bool_value;
            case RtValue::Kind::kString: return a.string_value == b.string_value;
            case RtValue::Kind::kObject: return a.object == b.object;
        }
        return false;
    }

    static std::int64_t rt_int(const RtValue& v) {
        switch (v.kind) {
            case RtValue::Kind::kInt: return v.int_value;
            case RtValue::Kind::kDouble: return static_cast<std::int64_t>(v.double_value);
            case RtValue::Kind::kBool: return v.bool_value ? 1 : 0;
            case RtValue::Kind::kString: {
                // Guarded parse: coercion failure yields 0 (Java-ish laxness)
                // without routing a hot path through throw/catch — and without
                // a catch(...) that would swallow unrelated exceptions.
                const std::string& s = v.string_value;
                std::int64_t parsed = 0;
                auto [end, ec] =
                    std::from_chars(s.data(), s.data() + s.size(), parsed);
                if (ec != std::errc{} || end != s.data() + s.size()) return 0;
                return parsed;
            }
            default: return 0;
        }
    }

    bool exec_stmt(const Method& method, const Statement& stmt, std::vector<RtValue>& env,
                   std::optional<BlockId>& next, bool& returned, RtValue& result) {
        return std::visit(
            [&](const auto& s) -> bool {
                using T = std::decay_t<decltype(s)>;
                if constexpr (std::is_same_v<T, Nop>) {
                } else if constexpr (std::is_same_v<T, AssignConst>) {
                    env[s.dst] = operand(method, env, Operand(s.value));
                } else if constexpr (std::is_same_v<T, AssignCopy>) {
                    env[s.dst] = env[s.src];
                } else if constexpr (std::is_same_v<T, NewObject>) {
                    auto obj = std::make_shared<RtObject>();
                    obj->class_name = s.class_name;
                    if (s.class_name == "org.json.JSONObject" ||
                        s.class_name == "android.content.ContentValues") {
                        obj->json = text::Json::object();
                    } else if (s.class_name == "org.json.JSONArray") {
                        obj->json = text::Json::array();
                    }
                    env[s.dst] = RtValue::of_object(obj);
                } else if constexpr (std::is_same_v<T, LoadField>) {
                    const RtValue& base = env[s.base];
                    env[s.dst] = base.is_object() && base.object
                                     ? lookup_field(*base.object, s.field)
                                     : RtValue::null();
                } else if constexpr (std::is_same_v<T, StoreField>) {
                    RtValue& base = env[s.base];
                    if (base.is_object() && base.object) {
                        base.object->fields[s.field] = operand(method, env, s.src);
                    }
                } else if constexpr (std::is_same_v<T, LoadStatic>) {
                    auto it = statics.find(s.class_name + "." + s.field);
                    env[s.dst] = it != statics.end() ? it->second : RtValue::null();
                } else if constexpr (std::is_same_v<T, StoreStatic>) {
                    statics[s.class_name + "." + s.field] = operand(method, env, s.src);
                } else if constexpr (std::is_same_v<T, LoadArray>) {
                    const RtValue& base = env[s.array];
                    auto index = static_cast<std::size_t>(
                        rt_int(operand(method, env, s.index)));
                    if (base.is_object() && base.object &&
                        index < base.object->list.size()) {
                        env[s.dst] = base.object->list[index];
                    } else {
                        env[s.dst] = RtValue::null();
                    }
                } else if constexpr (std::is_same_v<T, StoreArray>) {
                    RtValue& base = env[s.array];
                    if (base.is_object() && base.object) {
                        auto index = static_cast<std::size_t>(
                            rt_int(operand(method, env, s.index)));
                        auto& list = base.object->list;
                        if (list.size() <= index) list.resize(index + 1);
                        list[index] = operand(method, env, s.src);
                    }
                } else if constexpr (std::is_same_v<T, BinaryOp>) {
                    RtValue lhs = operand(method, env, s.lhs);
                    RtValue rhs = operand(method, env, s.rhs);
                    if (s.op == BinaryOp::Op::kConcat ||
                        (s.op == BinaryOp::Op::kAdd &&
                         (lhs.is_string() || rhs.is_string()))) {
                        env[s.dst] =
                            RtValue::of_string(rt_to_string(lhs) + rt_to_string(rhs));
                    } else {
                        std::int64_t a = rt_int(lhs), b = rt_int(rhs);
                        std::int64_t v = 0;
                        switch (s.op) {
                            case BinaryOp::Op::kAdd: v = a + b; break;
                            case BinaryOp::Op::kSub: v = a - b; break;
                            case BinaryOp::Op::kMul: v = a * b; break;
                            case BinaryOp::Op::kDiv: v = b == 0 ? 0 : a / b; break;
                            case BinaryOp::Op::kConcat: break;
                        }
                        env[s.dst] = RtValue::of_int(v);
                    }
                } else if constexpr (std::is_same_v<T, Invoke>) {
                    RtValue r = do_invoke(method, s, env);
                    if (s.dst) env[*s.dst] = std::move(r);
                } else if constexpr (std::is_same_v<T, If>) {
                    RtValue lhs = operand(method, env, s.lhs);
                    RtValue rhs = operand(method, env, s.rhs);
                    bool taken = false;
                    switch (s.op) {
                        case CmpOp::kEq: taken = rt_equal(lhs, rhs); break;
                        case CmpOp::kNe: taken = !rt_equal(lhs, rhs); break;
                        case CmpOp::kLt: taken = rt_int(lhs) < rt_int(rhs); break;
                        case CmpOp::kLe: taken = rt_int(lhs) <= rt_int(rhs); break;
                        case CmpOp::kGt: taken = rt_int(lhs) > rt_int(rhs); break;
                        case CmpOp::kGe: taken = rt_int(lhs) >= rt_int(rhs); break;
                    }
                    next = taken ? s.then_block : s.else_block;
                } else if constexpr (std::is_same_v<T, Goto>) {
                    next = s.target;
                } else if constexpr (std::is_same_v<T, Return>) {
                    if (s.value) result = operand(method, env, *s.value);
                    returned = true;
                }
                return true;
            },
            stmt);
    }

    RtValue lookup_field(RtObject& obj, const std::string& field) {
        auto it = obj.fields.find(field);
        if (it != obj.fields.end()) return it->second;
        return RtValue::null();
    }

    // ----------------------------------------------------------- invokes --
    RtValue do_invoke(const Method& caller, const Invoke& s, std::vector<RtValue>& env) {
        RtValue base = s.base ? env[*s.base] : RtValue::null();
        std::vector<RtValue> args;
        args.reserve(s.args.size());
        for (const auto& a : s.args) args.push_back(operand(caller, env, a));

        // App-defined target? Resolve like the call graph does: receiver's
        // declared type first, then the static callee class.
        const Method* target = nullptr;
        if (s.kind == InvokeKind::kVirtual && s.base) {
            const Type& receiver = caller.locals[*s.base].type;
            if (program->find_class(receiver)) {
                target = program->resolve_virtual({receiver, s.callee.method_name});
            }
        }
        if (!target) {
            target = program->find_method(s.callee);
            if (!target) target = program->resolve_virtual(s.callee);
        }
        if (target) {
            std::vector<RtValue> call_args;
            if (!target->is_static) call_args.push_back(base);
            for (auto& a : args) call_args.push_back(std::move(a));
            return call(*target, std::move(call_args));
        }
        return api_call(caller, s, base, args, env);
    }

    RtValue api_call(const Method& caller, const Invoke& s, RtValue& base,
                     std::vector<RtValue>& args, std::vector<RtValue>& env);
    RtValue reflect_from_json(const text::Json& doc, const std::string& class_name);
    text::Json reflect_to_json(const RtValue& value);

    void run_handler(const EventRegistration& event) {
        const Method* handler = program->find_method(event.handler);
        if (!handler) return;
        if (options.budget && options.budget->remaining() == 0) return;
        events_fired->add(1);
        current_trigger = event.label;
        steps_left = options.max_steps_per_event;
        if (options.budget) {
            // Clip this event's allowance to whatever the shared budget still
            // permits, and charge what the event actually consumed.
            steps_left = std::min(steps_left, options.budget->remaining());
        }
        const std::size_t allowance = steps_left;
        std::vector<RtValue> args;
        if (!handler->is_static) {
            args.push_back(RtValue::of_object(singleton(handler->class_name)));
        }
        for (std::uint32_t p = handler->is_static ? 0u : 1u; p < handler->param_count;
             ++p) {
            args.push_back(default_param(handler->locals[p].type));
        }
        call(*handler, std::move(args));
        if (options.budget) options.budget->charge(allowance - steps_left);
    }

    RtValue default_param(const Type& type) {
        if (type == "int" || type == "long") return RtValue::of_int(1);
        if (type == "boolean") return RtValue::of_bool(true);
        if (type == "java.lang.String") return RtValue::of_string("fuzz");
        auto obj = std::make_shared<RtObject>();
        obj->class_name = type;
        return RtValue::of_object(obj);
    }

    void dispatch_intent(const RtObjectPtr& intent) {
        // An explicit "action" extra targets the matching receiver only;
        // action-less intents broadcast to every registered receiver.
        std::string action;
        auto it = intent->fields.find("action");
        if (it != intent->fields.end()) action = rt_to_string(it->second);
        for (const auto& event : program->events) {
            if (event.kind != EventKind::kOnIntent) continue;
            if (!action.empty() && event.label != "intent:" + action) continue;
            const Method* handler = program->find_method(event.handler);
            if (!handler) continue;
            std::string saved_trigger = current_trigger;
            current_trigger = event.label;
            std::vector<RtValue> args;
            if (!handler->is_static) {
                args.push_back(RtValue::of_object(singleton(handler->class_name)));
            }
            for (std::uint32_t p = handler->is_static ? 0u : 1u; p < handler->param_count;
                 ++p) {
                if (strings::contains(handler->locals[p].type, "Intent")) {
                    args.push_back(RtValue::of_object(intent));
                } else {
                    args.push_back(default_param(handler->locals[p].type));
                }
            }
            call(*handler, std::move(args));
            current_trigger = std::move(saved_trigger);
        }
    }
};

// Defined out-of-line: the builtin library surface is large.
#include "interp/api_runtime.inc"

// ------------------------------------------------------------- interface --

Interpreter::Interpreter(const Program& program, FakeServer& server,
                         InterpreterOptions options)
    : impl_(std::make_shared<Impl>(program, server, options)) {}

http::Trace Interpreter::fuzz(FuzzMode mode) {
    obs::Span span("interp.fuzz", "interp");
    for (const auto& event : impl_->program->events) {
        if (!event_enabled(event.kind, mode)) continue;
        impl_->run_handler(event);
    }
    span.finish();
    obs::histogram("interp.fuzz_ms").observe(span.seconds() * 1000.0);
    impl_->flush_profile();
    return impl_->trace;
}

void Interpreter::run_event(const std::string& label) {
    for (const auto& event : impl_->program->events) {
        if (event.label == label) {
            impl_->run_handler(event);
            return;
        }
    }
    log::warn() << "no event registered with label " << label;
}

const http::Trace& Interpreter::trace() const { return impl_->trace; }

void Interpreter::reset() {
    auto fresh = std::make_shared<Impl>(*impl_->program, *impl_->server, impl_->options);
    impl_ = std::move(fresh);
}

}  // namespace extractocol::interp
