// Concrete IR interpreter — the dynamic-analysis baseline of §5.1.
//
// The paper compares Extractocol's static output against traffic traces
// collected by exercising real apps (manual UI fuzzing, and automatic
// UI fuzzing with PUMA) through a mitmproxy. Here the same comparison is
// realized by *executing* the app's IR against a scripted fake server and
// capturing every HTTP transaction:
//
//   * auto fuzzing   — drives startup + plain clickable events only (PUMA
//                      cannot operate custom-rendered UI and cannot log in);
//   * manual fuzzing — also drives custom UI, login flows, and the intents
//                      that fire during normal use;
//   * neither reaches timers, server pushes, or real-world side-effect
//                      actions (purchases, job applications) — the coverage
//                      gap that favors static analysis in Table 1.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "http/message.hpp"
#include "support/budget.hpp"
#include "xir/ir.hpp"

namespace extractocol::interp {

/// Server-side behavior: the corpus ships one script per app.
class FakeServer {
public:
    virtual ~FakeServer() = default;
    virtual http::Response handle(const http::Request& request) = 0;
};

/// Convenience scripted server: first matching rule wins.
class ScriptedServer : public FakeServer {
public:
    using Handler = std::function<http::Response(const http::Request&)>;

    /// `path_prefix` matches on "host/path..." (no scheme).
    void route(std::string path_prefix, Handler handler);
    /// Fixed payload route.
    void route_fixed(std::string path_prefix, http::BodyKind kind, std::string body);

    http::Response handle(const http::Request& request) override;

private:
    std::vector<std::pair<std::string, Handler>> routes_;
};

enum class FuzzMode {
    kAuto,    // PUMA-like: create + plain clicks
    kManual,  // + custom UI, login, intents
    kFull,    // everything (timers, pushes, actions) — debugging/oracle runs
};

struct InterpreterOptions {
    std::size_t max_steps_per_event = 200'000;
    std::size_t max_call_depth = 128;
    /// Optional shared analysis budget (not owned). Each event's step
    /// allowance is clipped to the remaining budget, the steps it consumed
    /// are charged afterwards, and no further events fire once it is
    /// exhausted. The interpreter runs events sequentially, so charging is
    /// deterministic.
    support::BudgetTracker* budget = nullptr;
};

class Interpreter {
public:
    Interpreter(const xir::Program& program, FakeServer& server,
                InterpreterOptions options = {});

    /// Runs startup plus every event eligible under `mode`, in registration
    /// order, and returns the captured traffic trace. App state (statics,
    /// database, preferences) persists across events within one call.
    [[nodiscard]] http::Trace fuzz(FuzzMode mode);

    /// Runs a single registered event by label (state persists across calls).
    void run_event(const std::string& label);

    [[nodiscard]] const http::Trace& trace() const;
    void reset();

private:
    struct Impl;
    std::shared_ptr<Impl> impl_;
};

/// True if events of this kind fire under the given fuzz mode.
bool event_enabled(xir::EventKind kind, FuzzMode mode);

}  // namespace extractocol::interp
