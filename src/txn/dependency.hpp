// Message dependency analysis (§3.3): request-response pairing falls out of
// the (DP, calling-context) transaction identity established by the slicer
// (the disjoint-sub-slice construction of Fig. 5); this module infers the
// *inter-transaction* dependencies — which request fields originate from
// which earlier response fields — at field granularity, through direct data
// flow, heap objects, statics, SQLite tables, and preferences.
//
// It also characterizes behavior: how response data is consumed (media
// player / image view / file / DB) and where request data originates
// (microphone / location / user input) — §2's application-aware knobs.
#pragma once

#include <string>
#include <vector>

#include "semantics/model.hpp"
#include "slicing/slicer.hpp"
#include "taint/engine.hpp"
#include "xir/callgraph.hpp"

namespace extractocol::txn {

/// One field-granular dependency edge: `response_field` of transaction
/// `from` feeds `request_field` of transaction `to`.
struct Dependency {
    std::size_t from = 0;  // index into the analyzed transaction vector
    std::size_t to = 0;
    /// Dot-joined JSON path of the response field ("" = whole body).
    std::string response_field;
    /// Where it lands: "uri", "body:<key>", "query:<key>", "header:<name>".
    std::string request_field;
    /// Mediating channel when indirect: "static:...", "db:...", "prefs:...";
    /// empty for direct flow.
    std::string via;

    bool operator==(const Dependency&) const = default;
};

struct BehaviorTags {
    /// Consumption sinks the response data reaches ("media_player", ...).
    std::vector<std::string> consumers;
    /// Origins feeding the request ("user_input", "location", ...).
    std::vector<std::string> sources;
};

class DependencyAnalyzer {
public:
    DependencyAnalyzer(const xir::Program& program, const xir::CallGraph& callgraph,
                       const semantics::SemanticModel& model, taint::TaintEngine& engine);

    /// Infers all dependency edges among the given transactions.
    [[nodiscard]] std::vector<Dependency> analyze(
        const std::vector<slicing::SlicedTransaction>& txns);

    /// Behavior characterization for one transaction.
    [[nodiscard]] BehaviorTags tags(const slicing::SlicedTransaction& txn) const;

private:
    struct FieldTap {
        xir::StmtRef stmt;          // the getter statement
        xir::LocalId value = 0;     // its destination local
        std::string field;          // response field name
    };

    [[nodiscard]] std::vector<FieldTap> response_taps(
        const slicing::SlicedTransaction& txn) const;
    /// Tag of the XML element held in `element_local` (def-chain lookup).
    [[nodiscard]] const std::string* element_tag_of(std::uint32_t method_index,
                                                    xir::LocalId element_local) const;

    const xir::Program* program_;
    const xir::CallGraph* callgraph_;
    const semantics::SemanticModel* model_;
    taint::TaintEngine* engine_;
};

}  // namespace extractocol::txn
