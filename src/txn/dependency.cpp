#include "txn/dependency.hpp"

#include <algorithm>
#include <set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace extractocol::txn {

using namespace xir;
using semantics::ApiModel;
using semantics::ConsumerKind;
using semantics::Role;
using semantics::SigAction;
using semantics::SourceKind;
using slicing::SlicedTransaction;
using taint::AccessPath;
using taint::CallTaintEvent;
using taint::Direction;
using taint::TaintSeed;

namespace {

const std::string* const_string_arg(const Invoke& call, std::size_t index) {
    if (index >= call.args.size()) return nullptr;
    const Operand& op = call.args[index];
    if (op.is_constant() && op.constant.kind == Constant::Kind::kString) {
        return &op.constant.string_value;
    }
    return nullptr;
}

std::string consumer_name(ConsumerKind kind) {
    switch (kind) {
        case ConsumerKind::kMediaPlayer: return "media_player";
        case ConsumerKind::kImageView: return "image_view";
        case ConsumerKind::kFile: return "file";
        case ConsumerKind::kDatabase: return "database";
        case ConsumerKind::kUi: return "ui";
        case ConsumerKind::kNone: return "";
    }
    return "";
}

std::string source_name(SourceKind kind) {
    switch (kind) {
        case SourceKind::kMicrophone: return "microphone";
        case SourceKind::kCamera: return "camera";
        case SourceKind::kLocation: return "location";
        case SourceKind::kUserInput: return "user_input";
        case SourceKind::kPrefs: return "preferences";
        case SourceKind::kResource: return "resource";
        case SourceKind::kNone: return "";
    }
    return "";
}

}  // namespace

DependencyAnalyzer::DependencyAnalyzer(const Program& program, const CallGraph& callgraph,
                                       const semantics::SemanticModel& model,
                                       taint::TaintEngine& engine)
    : program_(&program), callgraph_(&callgraph), model_(&model), engine_(&engine) {}

const std::string* DependencyAnalyzer::element_tag_of(std::uint32_t method_index,
                                                      LocalId element_local) const {
    // Scan the method for `element_local = <list>.item(...)`, then for
    // `<list> = <doc>.getElementsByTagName("tag")`.
    const Method& method = program_->method_at(method_index);
    std::optional<LocalId> list_local;
    for (const auto& block : method.blocks) {
        for (const auto& stmt : block.statements) {
            const auto* call = std::get_if<Invoke>(&stmt);
            if (!call || !call->dst) continue;
            if (*call->dst == element_local && call->callee.method_name == "item" &&
                call->base) {
                list_local = *call->base;
            }
        }
    }
    if (!list_local) return nullptr;
    for (const auto& block : method.blocks) {
        for (const auto& stmt : block.statements) {
            const auto* call = std::get_if<Invoke>(&stmt);
            if (!call || !call->dst) continue;
            if (*call->dst == *list_local &&
                call->callee.method_name == "getElementsByTagName") {
                return const_string_arg(*call, 0);
            }
        }
    }
    return nullptr;
}

std::vector<DependencyAnalyzer::FieldTap> DependencyAnalyzer::response_taps(
    const SlicedTransaction& txn) const {
    std::vector<FieldTap> taps;
    std::set<StmtRef> seen;
    for (const CallTaintEvent& event : txn.response_taint.call_events) {
        if (!event.base_tainted) continue;
        if (txn.response_slice.count(event.stmt) == 0) continue;
        const auto* call = std::get_if<Invoke>(&program_->statement(event.stmt));
        if (!call || !call->dst) continue;
        const ApiModel* api = model_->api(call->callee.class_name, call->callee.method_name);
        if (!api) continue;
        std::string field;
        switch (api->action) {
            case SigAction::kJsonGet: {
                const std::string* key = const_string_arg(*call, 0);
                if (!key) continue;
                field = *key;
                break;
            }
            case SigAction::kXmlGetAttribute: {
                const std::string* key = const_string_arg(*call, 0);
                if (!key) continue;
                field = "@" + *key;
                break;
            }
            case SigAction::kXmlGetText: {
                // Name the tap by the element's tag: walk the def chain
                // el = nodes.item(i); nodes = doc.getElementsByTagName("tag").
                field = "#text";
                if (call->base) {
                    if (const std::string* tag =
                            element_tag_of(event.stmt.method_index, *call->base)) {
                        field = *tag;
                    }
                }
                break;
            }
            default: continue;
        }
        if (seen.insert(event.stmt).second) {
            taps.push_back({event.stmt, *call->dst, std::move(field)});
        }
    }
    // Whole-body tap: the response object itself may feed a later request
    // (e.g. a body string stored verbatim).
    const auto* dp_call = std::get_if<Invoke>(&program_->statement(txn.dp_site));
    if (dp_call && dp_call->dst && txn.dp->response) {
        taps.push_back({txn.dp_site, *dp_call->dst, ""});
    }
    return taps;
}

std::vector<Dependency> DependencyAnalyzer::analyze(
    const std::vector<SlicedTransaction>& txns) {
    obs::Span span("txn.dependencies", "txn");
    obs::Counter& taps_probed = obs::counter("txn.response_taps");
    std::vector<Dependency> edges;
    auto add_edge = [&edges](Dependency edge) {
        if (std::find(edges.begin(), edges.end(), edge) == edges.end()) {
            edges.push_back(std::move(edge));
        }
    };

    for (std::size_t i = 0; i < txns.size(); ++i) {
        const SlicedTransaction& resp_txn = txns[i];
        if (resp_txn.response_slice.empty()) continue;
        for (const FieldTap& tap : response_taps(resp_txn)) {
            taps_probed.add(1);
            TaintSeed seed;
            seed.stmt = tap.stmt;
            seed.path = AccessPath::of_local(tap.value);
            auto flow = engine_->run(Direction::kForward, {seed});

            for (std::size_t j = 0; j < txns.size(); ++j) {
                if (j == i) continue;
                const SlicedTransaction& req_txn = txns[j];

                // The mediating channel, if the flow crossed one. Several
                // channels can match; pick the lexicographically-smallest
                // rendering so the reported channel never depends on
                // hash-set iteration order (which is stdlib-specific).
                std::string via;
                for (const auto& g : flow.globals) {
                    for (const auto& h : req_txn.request_taint.globals) {
                        if (h == g || h.has_prefix(g) || g.has_prefix(h)) {
                            namespace in = support::intern;
                            std::string channel =
                                g.is_static()
                                    ? "static:" + std::string(in::str(g.static_class)) +
                                          "." + std::string(in::str(g.key))
                                    : std::string(in::str(g.key));
                            if (via.empty() || channel < via) via = std::move(channel);
                            break;
                        }
                    }
                }

                // Rank candidate landing sites; prefer the most specific.
                std::string best;
                int best_rank = -1;
                auto consider = [&](std::string field, int rank) {
                    if (rank > best_rank) {
                        best = std::move(field);
                        best_rank = rank;
                    }
                };
                for (const CallTaintEvent& event : flow.call_events) {
                    bool at_dp = event.stmt == req_txn.dp_site;
                    bool in_request = req_txn.request_slice.count(event.stmt) > 0;
                    if (!at_dp && !in_request) continue;
                    const auto* call =
                        std::get_if<Invoke>(&program_->statement(event.stmt));
                    if (!call) continue;
                    bool arg1_tainted =
                        event.args_tainted.size() > 1 && event.args_tainted[1];
                    bool arg0_tainted =
                        !event.args_tainted.empty() && event.args_tainted[0];
                    const ApiModel* api =
                        model_->api(call->callee.class_name, call->callee.method_name);
                    SigAction action = api ? api->action : SigAction::kNone;
                    switch (action) {
                        case SigAction::kNameValuePairInit:
                        case SigAction::kJsonPut:
                        case SigAction::kContentValuesPut:
                        case SigAction::kMapPut: {
                            const std::string* key = const_string_arg(*call, 0);
                            if (key && arg1_tainted) consider("body:" + *key, 3);
                            break;
                        }
                        case SigAction::kHttpSetHeader:
                        case SigAction::kOkHeader: {
                            const std::string* name = const_string_arg(*call, 0);
                            if (name && arg1_tainted) consider("header:" + *name, 3);
                            break;
                        }
                        case SigAction::kAppend:
                        case SigAction::kStringConcat:
                        case SigAction::kUrlInit:
                        case SigAction::kOkUrl:
                        case SigAction::kHttpRequestInit:
                            if (arg0_tainted) consider("uri", 2);
                            break;
                        default:
                            if (at_dp && (arg0_tainted || event.base_tainted)) {
                                consider("uri", 1);
                            }
                            break;
                    }
                }
                if (best_rank >= 0) {
                    add_edge({i, j, tap.field, best, via});
                } else if (!via.empty()) {
                    add_edge({i, j, tap.field, "request", via});
                }
            }
        }
    }
    obs::counter("txn.pairings").add(edges.size());
    return edges;
}

BehaviorTags DependencyAnalyzer::tags(const SlicedTransaction& txn) const {
    BehaviorTags out;
    auto add_unique = [](std::vector<std::string>& list, std::string value) {
        if (!value.empty() &&
            std::find(list.begin(), list.end(), value) == list.end()) {
            list.push_back(std::move(value));
        }
    };
    for (const CallTaintEvent& event : txn.response_taint.call_events) {
        const auto* call = std::get_if<Invoke>(&program_->statement(event.stmt));
        if (!call) continue;
        const ApiModel* api = model_->api(call->callee.class_name, call->callee.method_name);
        if (!api) continue;
        bool any_arg = std::any_of(event.args_tainted.begin(), event.args_tainted.end(),
                                   [](bool b) { return b; });
        if ((any_arg || event.base_tainted) && api->consumer != ConsumerKind::kNone) {
            add_unique(out.consumers, consumer_name(api->consumer));
        }
    }
    for (const CallTaintEvent& event : txn.request_taint.call_events) {
        const auto* call = std::get_if<Invoke>(&program_->statement(event.stmt));
        if (!call) continue;
        const ApiModel* api = model_->api(call->callee.class_name, call->callee.method_name);
        if (!api) continue;
        if (event.dst_tainted && api->source != SourceKind::kNone) {
            add_unique(out.sources, source_name(api->source));
        }
    }
    return out;
}

}  // namespace extractocol::txn
