#include "sig/builder.hpp"

#include <algorithm>
#include <map>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"
#include "xir/cfg.hpp"

namespace extractocol::sig {

using namespace xir;
using semantics::ApiModel;
using semantics::DemarcationSpec;
using semantics::Role;
using semantics::SigAction;

namespace {

Sig::ValueType type_hint(const Type& t) {
    if (t == "int" || t == "long") return Sig::ValueType::kInt;
    if (t == "boolean") return Sig::ValueType::kBool;
    if (t == "java.lang.String") return Sig::ValueType::kString;
    return Sig::ValueType::kAny;
}

DemandNode::Kind demand_kind_for_type(const Type& t) {
    if (t == "int" || t == "long") return DemandNode::Kind::kInt;
    if (t == "boolean") return DemandNode::Kind::kBool;
    if (t == "java.lang.String") return DemandNode::Kind::kString;
    return DemandNode::Kind::kUnknown;
}

const std::string* const_string(const Operand& op) {
    if (op.is_constant() && op.constant.kind == Constant::Kind::kString) {
        return &op.constant.string_value;
    }
    return nullptr;
}

/// Constant-string argument by index; safe for missing args (no temporary).
const std::string* const_string_arg(const Invoke& call, std::size_t index) {
    if (index >= call.args.size()) return nullptr;
    return const_string(call.args[index]);
}

/// The interpreter: one instance per SignatureBuilder::build() call. Session
/// state (statics, prefs) persists across the producer pre-pass and the main
/// context walk so cross-event values become visible.
class Interp {
public:
    Interp(const Program& program, const CallGraph& callgraph,
           const semantics::SemanticModel& model, const BuildRequest& request)
        : program_(&program), callgraph_(&callgraph), model_(&model), request_(&request) {
        response_root_ = std::make_shared<DemandNode>();
        if (obs::Profiler::global().enabled()) {
            method_stmts_.resize(program.method_table().size(), 0);
        }
    }

    std::optional<TransactionSignature> run() {
        // Producer pre-pass: other event handlers whose slice statements may
        // populate statics/prefs read by this transaction (async heuristic).
        std::uint32_t root =
            request_->context.empty()
                ? request_->dp_site.method_index
                : request_->context.front().caller;
        for (const auto& event : program_->events) {
            auto mi = program_->method_index(event.handler);
            if (!mi || *mi == root) continue;
            if (!touches_slice(*mi)) continue;
            interpret(*mi, {}, 0, /*live=*/false, 0);
        }

        std::vector<SigValue> root_args;
        interpret(root, std::move(root_args), 0, /*live=*/true, 0);

        if (!captured_) return std::nullopt;

        // Async response delivery: interpret the listener with the demand
        // root bound to its response parameter.
        for (const auto& [ref, param_index] : pending_callbacks_) {
            const Method* listener = program_->find_method(ref);
            if (!listener) continue;
            std::vector<SigValue> args;
            std::uint32_t formal0 = listener->is_static ? 0 : 1;
            args.resize(listener->param_count);
            if (!listener->is_static) args[0] = SigValue::new_object();
            std::uint32_t slot = formal0 + static_cast<std::uint32_t>(param_index);
            if (slot < args.size()) args[slot] = SigValue::of_demand(response_root_);
            auto mi = program_->method_index(ref);
            if (mi) interpret(*mi, std::move(args), kNoContext, /*live=*/false, 0);
        }

        finalize_response();
        if (step_capped_) {
            // The build stopped early: whatever stayed unknown did so because
            // the budget ran out, not because the value is free. Tag only the
            // reason-less leaves — more specific reasons survive.
            tag_unknowns(out_.uri, UnknownReason::kBudgetExhausted, "budget");
            for (auto& [name, value] : out_.headers) {
                tag_unknowns(name, UnknownReason::kBudgetExhausted, "budget");
                tag_unknowns(value, UnknownReason::kBudgetExhausted, "budget");
            }
            tag_unknowns(out_.body, UnknownReason::kBudgetExhausted, "budget");
            tag_unknowns(out_.response_body, UnknownReason::kBudgetExhausted,
                         "budget");
        }
        return out_;
    }

private:
    static constexpr std::size_t kNoContext = static_cast<std::size_t>(-1);
    static constexpr int kMaxDepth = 48;

    using Env = std::map<LocalId, SigValue>;

    // ------------------------------------------------------------ helpers --

    bool in_slice(const StmtRef& ref) const {
        return !request_->slice || request_->slice->count(ref) > 0;
    }

    bool touches_slice(std::uint32_t root) const {
        if (!request_->slice) return true;
        for (std::uint32_t mi : callgraph_->reachable_from({root})) {
            for (const auto& ref : *request_->slice) {
                if (ref.method_index == mi) return true;
            }
        }
        return false;
    }

    SigValue value_of(const Env& env, const Method& method, const Operand& op) const {
        if (op.is_constant()) {
            switch (op.constant.kind) {
                case Constant::Kind::kString:
                    return SigValue::of_str(Sig::constant(op.constant.string_value));
                case Constant::Kind::kInt:
                    return SigValue::of_str(
                        Sig::constant(std::to_string(op.constant.int_value)));
                case Constant::Kind::kBool:
                    return SigValue::of_str(
                        Sig::constant(op.constant.bool_value ? "true" : "false"));
                case Constant::Kind::kDouble:
                case Constant::Kind::kNull:
                    return SigValue::none();
            }
        }
        auto it = env.find(op.local);
        if (it != env.end()) return it->second;
        return SigValue::none(type_hint(method.locals[op.local].type));
    }

    static void bind(Env& env, LocalId local, SigValue value) {
        env[local] = std::move(value);
    }

    // ------------------------------------------------- method interpretation

    /// Interprets one method body. `ctx_pos` tracks progress along the
    /// transaction's calling context (kNoContext = off-context walk); `live`
    /// walks may capture the DP.
    SigValue interpret(std::uint32_t mi, std::vector<SigValue> args, std::size_t ctx_pos,
                       bool live, int depth) {
        if (depth > kMaxDepth) {
            obs::counter("sig.unknown_reason.taint_depth_cutoff").add(1);
            return SigValue::none(Sig::ValueType::kAny,
                                  UnknownReason::kTaintDepthCutoff, "depth");
        }
        if (on_stack_.count(mi) > 0) {
            obs::counter("sig.unknown_reason.taint_depth_cutoff").add(1);
            return SigValue::none(Sig::ValueType::kAny,
                                  UnknownReason::kTaintDepthCutoff, "recursion");
        }
        on_stack_.insert(mi);

        const Method& method = program_->method_at(mi);
        Cfg cfg(method);

        std::vector<std::optional<Env>> entry(method.blocks.size());
        Env env0;
        for (std::uint32_t p = 0; p < method.param_count && p < method.locals.size(); ++p) {
            if (p < args.size() && !args[p].is(SigValue::Kind::kNone)) {
                env0[p] = args[p];
            }
        }
        entry[0] = std::move(env0);

        std::optional<SigValue> ret;

        struct LoopCtx {
            std::set<BlockId> blocks;
            std::map<Sig*, Sig> snapshots;
            bool open = true;
        };
        std::vector<LoopCtx> loops;

        auto snapshot_env = [](const Env& env, LoopCtx& loop) {
            for (const auto& [local, value] : env) {
                (void)local;
                if (value.shared_sig) {
                    loop.snapshots.emplace(value.shared_sig.get(), *value.shared_sig);
                }
                if (value.request && value.request->body &&
                    value.request->body->shared_sig) {
                    loop.snapshots.emplace(value.request->body->shared_sig.get(),
                                           *value.request->body->shared_sig);
                }
            }
        };
        auto widen_loop_ctx = [](LoopCtx& loop) {
            for (auto& [ptr, snap] : loop.snapshots) {
                if (!(*ptr == snap)) *ptr = widen_loop(snap, *ptr);
            }
            loop.open = false;
        };

        for (BlockId b : cfg.reverse_post_order()) {
            if (!cfg.is_reachable(b) || !entry[b]) continue;
            for (auto& loop : loops) {
                if (loop.open && loop.blocks.count(b) == 0) widen_loop_ctx(loop);
            }
            if (cfg.is_loop_header(b)) {
                LoopCtx loop;
                for (BlockId lb : cfg.loop_blocks(b)) loop.blocks.insert(lb);
                snapshot_env(*entry[b], loop);
                loops.push_back(std::move(loop));
            }

            Env env = *entry[b];
            const auto& stmts = method.blocks[b].statements;
            for (std::uint32_t i = 0; i < stmts.size(); ++i) {
                execute(StmtRef{mi, b, i}, stmts[i], method, env, ctx_pos, live, depth,
                        ret);
            }
            auto successors = method.blocks[b].successors();
            // Branch points hand each successor its own copy of the mutable
            // signature cells so branch-local appends/puts do not leak into
            // the sibling path; the join below re-merges with disjunction.
            // Loop headers keep shared cells: the loop body's growth must be
            // visible to the exit path for rep{} widening.
            const bool fork = successors.size() > 1 && !cfg.is_loop_header(b);
            for (BlockId succ : successors) {
                if (cfg.is_back_edge(b, succ)) continue;
                Env env_for_succ;
                if (fork) {
                    std::map<const void*, SigValue> memo;
                    for (const auto& [local, value] : env) {
                        env_for_succ.emplace(local, value.clone(memo));
                    }
                } else {
                    env_for_succ = env;
                }
                const Env& env = env_for_succ;  // shadow: merge uses the copy
                if (!entry[succ]) {
                    entry[succ] = env;
                } else {
                    Env& target = *entry[succ];
                    for (const auto& [local, value] : env) {
                        auto it = target.find(local);
                        if (it == target.end()) {
                            target.emplace(local, value);
                        } else if (!(it->second.to_sig() == value.to_sig()) ||
                                   it->second.kind != value.kind) {
                            it->second = SigValue::merge(it->second, value);
                        }
                    }
                }
            }
        }
        for (auto& loop : loops) {
            if (loop.open) widen_loop_ctx(loop);
        }

        on_stack_.erase(mi);
        return ret.value_or(SigValue::none());
    }

    // ------------------------------------------------- statement execution

    void execute(const StmtRef& ref, const Statement& stmt, const Method& method, Env& env,
                 std::size_t ctx_pos, bool live, int depth, std::optional<SigValue>& ret) {
        // Budget cap: stop executing once the step budget is gone. The count
        // is sequential and input-determined, so the cap point is the same on
        // every run regardless of --jobs.
        if (step_capped_) return;
        ++steps_;
        if (!method_stmts_.empty()) ++method_stmts_[ref.method_index];
        if (request_->max_steps && steps_ > request_->max_steps) {
            step_capped_ = true;
            obs::counter("sig.unknown_reason.budget_exhausted").add(1);
            return;
        }
        // Control flow is structural; everything else obeys the slice filter.
        const bool slice_member = in_slice(ref);
        std::visit(
            [&](const auto& s) {
                using T = std::decay_t<decltype(s)>;
                if constexpr (std::is_same_v<T, Return>) {
                    if (s.value && slice_member) {
                        SigValue v = value_of(env, method, *s.value);
                        ret = ret ? SigValue::merge(*ret, v) : v;
                    } else if (s.value && !ret) {
                        ret = value_of(env, method, *s.value);
                    }
                } else if constexpr (std::is_same_v<T, Nop> || std::is_same_v<T, If> ||
                                     std::is_same_v<T, Goto>) {
                    // no value effect
                } else if constexpr (std::is_same_v<T, AssignConst>) {
                    if (!slice_member) return;
                    SigValue v = value_of(env, method, Operand(s.value));
                    // Constants remember the IR instruction that introduced
                    // them (method:block:index), surfaced by --explain.
                    if (v.is(SigValue::Kind::kStr) && v.str.is_const() &&
                        v.str.origin.empty()) {
                        v.str.origin = "ir:" + std::to_string(ref.method_index) + ":" +
                                       std::to_string(ref.block) + ":" +
                                       std::to_string(ref.index);
                    }
                    bind(env, s.dst, std::move(v));
                } else if constexpr (std::is_same_v<T, AssignCopy>) {
                    if (!slice_member) return;
                    bind(env, s.dst, value_of(env, method, Operand(s.src)));
                } else if constexpr (std::is_same_v<T, NewObject>) {
                    if (!slice_member) return;
                    bind(env, s.dst, allocate(s.class_name));
                } else if constexpr (std::is_same_v<T, LoadField>) {
                    if (!slice_member) return;
                    bind(env, s.dst, load_field(env, method, s));
                } else if constexpr (std::is_same_v<T, StoreField>) {
                    if (!slice_member) return;
                    SigValue base = value_of(env, method, Operand(s.base));
                    if (base.is(SigValue::Kind::kObject) && base.object) {
                        (*base.object)[s.field] = value_of(env, method, s.src);
                    }
                } else if constexpr (std::is_same_v<T, LoadStatic>) {
                    if (!slice_member) return;
                    auto it = statics_.find(s.class_name + "." + s.field);
                    bind(env, s.dst,
                         it != statics_.end()
                             ? it->second
                             : SigValue::none(type_hint(method.locals[s.dst].type)));
                } else if constexpr (std::is_same_v<T, StoreStatic>) {
                    if (!slice_member) return;
                    statics_[s.class_name + "." + s.field] = value_of(env, method, s.src);
                } else if constexpr (std::is_same_v<T, LoadArray>) {
                    if (!slice_member) return;
                    SigValue base = value_of(env, method, Operand(s.array));
                    if (base.is(SigValue::Kind::kList) && base.list && !base.list->empty()) {
                        SigValue merged = (*base.list)[0];
                        for (std::size_t k = 1; k < base.list->size(); ++k) {
                            merged = SigValue::merge(merged, (*base.list)[k]);
                        }
                        bind(env, s.dst, merged);
                    } else if (base.is(SigValue::Kind::kDemand) && base.demand) {
                        bind(env, s.dst, SigValue::of_demand(base.demand->array_item()));
                    } else {
                        bind(env, s.dst, SigValue::none());
                    }
                } else if constexpr (std::is_same_v<T, StoreArray>) {
                    if (!slice_member) return;
                    SigValue base = value_of(env, method, Operand(s.array));
                    if (base.is(SigValue::Kind::kList) && base.list) {
                        base.list->push_back(value_of(env, method, s.src));
                    }
                } else if constexpr (std::is_same_v<T, BinaryOp>) {
                    if (!slice_member) return;
                    if (s.op == BinaryOp::Op::kConcat || s.op == BinaryOp::Op::kAdd) {
                        SigValue lhs = value_of(env, method, s.lhs);
                        SigValue rhs = value_of(env, method, s.rhs);
                        bool stringy = type_hint(method.locals[s.dst].type) ==
                                           Sig::ValueType::kString ||
                                       s.op == BinaryOp::Op::kConcat;
                        if (stringy) {
                            bind(env, s.dst,
                                 SigValue::of_str(Sig::concat(lhs.to_sig(), rhs.to_sig())));
                        } else {
                            bind(env, s.dst, SigValue::none(Sig::ValueType::kInt));
                        }
                    } else {
                        bind(env, s.dst, SigValue::none(Sig::ValueType::kInt));
                    }
                } else if constexpr (std::is_same_v<T, Invoke>) {
                    // Context-chain calls must always be walked: they carry
                    // control to the DP even when no data flows through them.
                    bool on_context = live && ctx_pos != kNoContext &&
                                      ctx_pos < request_->context.size() &&
                                      request_->context[ctx_pos].site == ref;
                    if (!slice_member && !on_context &&
                        !(live && ref == request_->dp_site)) {
                        return;
                    }
                    invoke(ref, s, method, env, ctx_pos, live, depth);
                }
            },
            stmt);
    }

    SigValue allocate(const std::string& class_name) {
        if (class_name == "java.lang.StringBuilder" ||
            class_name == "java.lang.StringBuffer") {
            return SigValue::builder(Sig::constant(""));
        }
        if (class_name == "org.json.JSONObject" ||
            class_name == "android.content.ContentValues") {
            return SigValue::json_object();
        }
        if (class_name == "org.json.JSONArray") return SigValue::json_array();
        if (strings::contains(class_name, "List")) return SigValue::new_list();
        if (strings::contains(class_name, "Map")) return SigValue::new_object();
        if (const ApiModel* api = model_->api(class_name, "<init>")) {
            if (api->action == SigAction::kHttpRequestInit) {
                return SigValue::new_request(api->http_method, Sig::unknown(), false);
            }
            if (api->action == SigAction::kVolleyRequestInit) {
                return SigValue::new_request("GET", Sig::unknown(), false);
            }
            if (api->action == SigAction::kOkRequestBuilderInit) {
                return SigValue::new_request("GET", Sig::unknown(), false);
            }
        }
        if (class_name == "okhttp3.Request$Builder") {
            return SigValue::new_request("GET", Sig::unknown(), false);
        }
        if (program_->find_class(class_name)) return SigValue::new_object();
        return SigValue::none();
    }

    SigValue load_field(const Env& env, const Method& method, const LoadField& s) {
        SigValue base = value_of(env, method, Operand(s.base));
        if (base.is(SigValue::Kind::kObject) && base.object) {
            auto it = base.object->find(s.field);
            if (it != base.object->end()) return it->second;
            return SigValue::none(type_hint(method.locals[s.dst].type));
        }
        if (base.is(SigValue::Kind::kDemand) && base.demand) {
            // Reflection-deserialized POJO: field reads refine the tree.
            DemandNodePtr child = base.demand->child(s.field);
            if (child->origin.empty()) child->origin = "field:" + s.field;
            child->narrow(demand_kind_for_type(method.locals[s.dst].type));
            return SigValue::of_demand(child);
        }
        return SigValue::none(type_hint(method.locals[s.dst].type));
    }

    // --------------------------------------------------------- invocation --

    void invoke(const StmtRef& ref, const Invoke& s, const Method& method, Env& env,
                std::size_t ctx_pos, bool live, int depth) {
        SigValue base_value =
            s.base ? value_of(env, method, Operand(*s.base)) : SigValue::none();
        std::vector<SigValue> arg_values;
        arg_values.reserve(s.args.size());
        for (const auto& a : s.args) arg_values.push_back(value_of(env, method, a));

        auto app_edges = callgraph_->edges_at(ref);
        if (!app_edges.empty()) {
            SigValue result;
            SigValue background_result;
            for (const auto& edge : app_edges) {
                const Method& callee = program_->method_at(edge.callee);
                std::vector<SigValue> params(callee.param_count);
                std::uint32_t formal0 = callee.is_static ? 0 : 1;
                if (!callee.is_static) {
                    params[0] = s.base ? base_value : SigValue::new_object();
                    if (params[0].is(SigValue::Kind::kNone)) {
                        params[0] = SigValue::new_object();
                    }
                }
                for (std::size_t ai = 0; ai < arg_values.size(); ++ai) {
                    std::size_t slot = formal0 + ai;
                    if (slot < params.size()) params[slot] = arg_values[ai];
                }
                // AsyncTask chaining: onPostExecute receives doInBackground's
                // result.
                if (edge.kind == CallEdgeKind::kImplicit &&
                    callee.name == "onPostExecute" && callee.param_count > formal0) {
                    params[formal0] = background_result;
                }

                bool matches_context = live && ctx_pos != kNoContext &&
                                       ctx_pos < request_->context.size() &&
                                       request_->context[ctx_pos].site == ref &&
                                       request_->context[ctx_pos].callee == edge.callee;
                SigValue r =
                    interpret(edge.callee, std::move(params),
                              matches_context ? ctx_pos + 1 : kNoContext,
                              matches_context && live, depth + 1);
                if (edge.kind == CallEdgeKind::kImplicit &&
                    callee.name == "doInBackground") {
                    background_result = r;
                }
                if (edge.kind == CallEdgeKind::kDirect) result = r;
            }
            if (s.dst) bind(env, *s.dst, result);
        } else {
            apply_api(ref, s, method, env, base_value, arg_values);
        }

        // DP capture: only on the live walk that followed the full context.
        if (live && !captured_ &&
            (ctx_pos == request_->context.size() || ctx_pos == kNoContext) &&
            ref == request_->dp_site) {
            capture(s, method, env, base_value, arg_values);
        }
    }

    // ------------------------------------------------------- API semantics --

    void apply_api(const StmtRef& ref, const Invoke& s, const Method& method, Env& env,
                   SigValue& base_value, std::vector<SigValue>& args) {
        (void)ref;
        (void)method;
        const ApiModel* api = model_->api(s.callee.class_name, s.callee.method_name);
        SigAction action = api ? api->action : SigAction::kNone;

        auto set_dst = [&](SigValue v) {
            if (s.dst) bind(env, *s.dst, std::move(v));
        };
        auto set_base = [&](SigValue v) {
            if (s.base) bind(env, *s.base, std::move(v));
        };
        auto arg_sig = [&](std::size_t i) {
            return i < args.size() ? args[i].to_sig() : Sig::unknown();
        };
        auto arg_or_none = [&](std::size_t i) {
            return i < args.size() ? args[i] : SigValue::none();
        };
        auto propagate_demand = [&]() -> bool {
            // Demand values flow through wrappers/readers/transformers.
            if (base_value.is(SigValue::Kind::kDemand)) {
                set_dst(base_value);
                return true;
            }
            for (auto& a : args) {
                if (a.is(SigValue::Kind::kDemand)) {
                    set_dst(a);
                    set_base(a);
                    return true;
                }
            }
            return false;
        };
        auto api_origin = [&] {
            return "api:" + s.callee.class_name + "." + s.callee.method_name;
        };
        // Provenance-carrying give-up: the destination becomes an unknown
        // tagged with why and where, and the per-reason counter ticks.
        auto give_up = [&](Sig::ValueType type, UnknownReason reason,
                           std::string origin = {}) {
            if (!s.dst) return;
            obs::counter(std::string("sig.unknown_reason.") +
                         unknown_reason_name(reason))
                .add(1);
            set_dst(SigValue::none(type, reason,
                                   origin.empty() ? api_origin() : std::move(origin)));
        };
        // First discovery names the demand node; later reads keep the tag.
        auto stamp_origin = [&](const DemandNodePtr& node) {
            if (node->origin.empty()) node->origin = api_origin();
        };
        auto record_unmodeled = [&] {
            if (program_->find_class(s.callee.class_name)) return;
            if (model_->is_modeled(s.callee.class_name, s.callee.method_name)) return;
            obs::counter("audit.unmodeled_api." + s.callee.class_name + "." +
                         s.callee.method_name)
                .add(1);
        };

        switch (action) {
            case SigAction::kStringBuilderInit: {
                Sig init = args.empty() ? Sig::constant("") : arg_sig(0);
                set_base(SigValue::builder(std::move(init)));
                break;
            }
            case SigAction::kAppend: {
                if (base_value.is(SigValue::Kind::kBuilder) && base_value.shared_sig) {
                    *base_value.shared_sig =
                        Sig::concat(*base_value.shared_sig, arg_sig(0));
                    set_dst(base_value);
                } else {
                    set_dst(SigValue::of_str(
                        Sig::concat(base_value.to_sig(), arg_sig(0))));
                }
                break;
            }
            case SigAction::kToString: {
                if (propagate_demand()) break;
                set_dst(SigValue::of_str(base_value.to_sig()));
                break;
            }
            case SigAction::kStringConcat:
                set_dst(SigValue::of_str(Sig::concat(base_value.to_sig(), arg_sig(0))));
                break;
            case SigAction::kStringValueOf:
                if (propagate_demand()) break;
                set_dst(SigValue::of_str(arg_sig(0)));
                break;
            case SigAction::kStringTrim:
                if (propagate_demand()) break;
                set_dst(SigValue::of_str(base_value.to_sig()));
                break;
            case SigAction::kStringFormat:
                set_dst(SigValue::of_str(format_sig(args)));
                break;
            case SigAction::kUrlEncode: {
                // Constants stay recognizable after encoding; dynamic parts
                // stay wildcards.
                Sig v = arg_sig(0);
                if (v.is_const()) {
                    set_dst(SigValue::of_str(Sig::constant(strings::percent_encode(v.text))));
                } else {
                    obs::counter("sig.unknown_reason.derived_string").add(1);
                    set_dst(SigValue::of_str(
                        Sig::unknown(Sig::ValueType::kString,
                                     UnknownReason::kDerivedString, api_origin())));
                }
                break;
            }
            case SigAction::kStringToUnknown:
                give_up(Sig::ValueType::kString, UnknownReason::kDerivedString);
                break;

            // ------------------------------------------------------- JSON --
            case SigAction::kJsonNewObject: {
                if (!args.empty() && args[0].is(SigValue::Kind::kDemand) && args[0].demand) {
                    args[0].demand->narrow(DemandNode::Kind::kObject);
                    if (args[0].demand->kind == DemandNode::Kind::kUnknown) {
                        args[0].demand->kind = DemandNode::Kind::kObject;
                    }
                    set_base(args[0]);
                } else if (!base_value.is(SigValue::Kind::kJson)) {
                    set_base(SigValue::json_object());
                }
                break;
            }
            case SigAction::kJsonNewArray: {
                if (!args.empty() && args[0].is(SigValue::Kind::kDemand) && args[0].demand) {
                    args[0].demand->kind = DemandNode::Kind::kArray;
                    set_base(args[0]);
                } else if (!base_value.is(SigValue::Kind::kJson)) {
                    set_base(SigValue::json_array());
                }
                break;
            }
            case SigAction::kJsonPut:
            case SigAction::kContentValuesPut:
            case SigAction::kMapPut: {
                const std::string* key = const_string_arg(s, 0);
                if (base_value.is(SigValue::Kind::kJson) && base_value.shared_sig && key) {
                    Sig member = json_member_sig(arg_or_none(1));
                    base_value.shared_sig->set_member(*key, std::move(member));
                } else if (base_value.is(SigValue::Kind::kObject) && base_value.object &&
                           key) {
                    (*base_value.object)[*key] = arg_or_none(1);
                }
                set_dst(base_value);
                break;
            }
            case SigAction::kJsonArrayPut: {
                if (base_value.is(SigValue::Kind::kJson) && base_value.shared_sig) {
                    base_value.shared_sig->children.push_back(
                        json_member_sig(arg_or_none(0)));
                }
                set_dst(base_value);
                break;
            }
            case SigAction::kJsonGet:
            case SigAction::kMapGet: {
                const std::string* key = const_string_arg(s, 0);
                if (base_value.is(SigValue::Kind::kDemand) && base_value.demand && key) {
                    DemandNodePtr child = base_value.demand->child(*key);
                    stamp_origin(child);
                    child->narrow(leaf_kind_for_getter(s.callee.method_name));
                    set_dst(SigValue::of_demand(child));
                } else if (base_value.is(SigValue::Kind::kJson) && base_value.shared_sig &&
                           key) {
                    const Sig* member = base_value.shared_sig->member(*key);
                    set_dst(member ? SigValue::of_str(*member) : SigValue::none());
                } else if (base_value.is(SigValue::Kind::kObject) && base_value.object &&
                           key) {
                    auto it = base_value.object->find(*key);
                    set_dst(it != base_value.object->end() ? it->second : SigValue::none());
                } else {
                    set_dst(SigValue::none());
                }
                break;
            }
            case SigAction::kJsonGetObject:
            case SigAction::kJsonGetArray: {
                const std::string* key = const_string_arg(s, 0);
                if (base_value.is(SigValue::Kind::kDemand) && base_value.demand && key) {
                    DemandNodePtr child = base_value.demand->child(*key);
                    stamp_origin(child);
                    if (action == SigAction::kJsonGetArray) {
                        child->kind = DemandNode::Kind::kArray;
                    } else if (child->kind == DemandNode::Kind::kUnknown) {
                        child->kind = DemandNode::Kind::kObject;
                    }
                    set_dst(SigValue::of_demand(child));
                } else {
                    set_dst(SigValue::none());
                }
                break;
            }
            case SigAction::kJsonArrayGet: {
                if (base_value.is(SigValue::Kind::kDemand) && base_value.demand) {
                    DemandNodePtr item = base_value.demand->array_item();
                    stamp_origin(item);
                    if (s.callee.method_name == "getJSONObject" &&
                        item->kind == DemandNode::Kind::kUnknown) {
                        item->kind = DemandNode::Kind::kObject;
                    }
                    if (s.callee.method_name == "getString") {
                        item->narrow(DemandNode::Kind::kString);
                    }
                    set_dst(SigValue::of_demand(item));
                } else {
                    set_dst(SigValue::none());
                }
                break;
            }
            case SigAction::kJsonArrayLength:
                set_dst(SigValue::none(Sig::ValueType::kInt));
                break;
            case SigAction::kJsonToString:
                if (base_value.is(SigValue::Kind::kJson) && base_value.shared_sig) {
                    set_dst(SigValue::of_str(*base_value.shared_sig));
                } else if (!propagate_demand()) {
                    set_dst(SigValue::none(Sig::ValueType::kString));
                }
                break;
            case SigAction::kGsonFromJson: {
                // gson.fromJson(body, "com.app.Talk"): reflectively binds all
                // POJO fields — eagerly expand the demand tree.
                DemandNodePtr node;
                if (!args.empty() && args[0].is(SigValue::Kind::kDemand)) {
                    node = args[0].demand;
                } else {
                    node = std::make_shared<DemandNode>();
                }
                const std::string* cls =
                    s.args.size() > 1 ? const_string(s.args[1]) : nullptr;
                if (cls) {
                    obs::counter("sig.unknown_reason.reflection").add(1);
                    expand_pojo(node, *cls, 0);
                }
                set_dst(SigValue::of_demand(node));
                break;
            }
            case SigAction::kGsonToJson: {
                set_dst(SigValue::of_str(pojo_to_sig(arg_or_none(0), 0)));
                break;
            }

            // -------------------------------------------------------- XML --
            case SigAction::kXmlParse: {
                if (!args.empty() && args[0].is(SigValue::Kind::kDemand) && args[0].demand) {
                    args[0].demand->kind = DemandNode::Kind::kXml;
                    set_dst(args[0]);
                } else {
                    set_dst(SigValue::none());
                }
                break;
            }
            case SigAction::kXmlGetElement: {
                const std::string* tag = const_string_arg(s, 0);
                if (base_value.is(SigValue::Kind::kDemand) && base_value.demand && tag) {
                    base_value.demand->kind = DemandNode::Kind::kXml;
                    DemandNodePtr child = base_value.demand->child(*tag);
                    stamp_origin(child);
                    child->kind = DemandNode::Kind::kXml;
                    set_dst(SigValue::of_demand(child));
                } else {
                    set_dst(SigValue::none());
                }
                break;
            }
            case SigAction::kXmlGetAttribute: {
                const std::string* name =
                    const_string_arg(s, 0);
                if (base_value.is(SigValue::Kind::kDemand) && base_value.demand && name) {
                    DemandNodePtr child = base_value.demand->child("@" + *name);
                    stamp_origin(child);
                    child->narrow(DemandNode::Kind::kString);
                    set_dst(SigValue::of_demand(child));
                } else {
                    set_dst(SigValue::none(Sig::ValueType::kString));
                }
                break;
            }
            case SigAction::kXmlGetText: {
                if (base_value.is(SigValue::Kind::kDemand) && base_value.demand) {
                    DemandNodePtr child = base_value.demand->child("#text");
                    stamp_origin(child);
                    child->narrow(DemandNode::Kind::kString);
                    set_dst(SigValue::of_demand(child));
                } else {
                    set_dst(SigValue::none(Sig::ValueType::kString));
                }
                break;
            }

            // ----------------------------------------------- HTTP objects --
            case SigAction::kHttpRequestInit: {
                SigValue req = SigValue::new_request(api->http_method, arg_sig(0), true);
                set_base(std::move(req));
                break;
            }
            case SigAction::kHttpSetEntity: {
                if (base_value.is(SigValue::Kind::kRequest) && base_value.request) {
                    base_value.request->body =
                        std::make_shared<SigValue>(arg_or_none(0));
                }
                break;
            }
            case SigAction::kHttpSetHeader:
            case SigAction::kOkHeader: {
                if (base_value.request) {
                    base_value.request->headers.emplace_back(arg_sig(0), arg_sig(1));
                }
                if (action == SigAction::kOkHeader) set_dst(base_value);
                break;
            }
            case SigAction::kStringEntityInit: {
                // new StringEntity(body) / RequestBody.create(type, body).
                SigValue payload = s.callee.method_name == "create" ? arg_or_none(1)
                                                                    : arg_or_none(0);
                if (s.base) {
                    set_base(payload);
                } else {
                    set_dst(payload);
                }
                break;
            }
            case SigAction::kFormEntityInit:
                set_base(arg_or_none(0));
                break;
            case SigAction::kNameValuePairInit:
                set_base(SigValue::new_pair(arg_sig(0), arg_sig(1)));
                break;
            case SigAction::kGetEntity:
            case SigAction::kGetContent:
            case SigAction::kOkBodyString:
                if (!propagate_demand()) set_dst(SigValue::none());
                break;
            case SigAction::kEntityToString:
            case SigAction::kReadLine:
                if (!propagate_demand()) set_dst(SigValue::none(Sig::ValueType::kString));
                break;
            case SigAction::kUrlInit:
                set_base(SigValue::of_str(arg_sig(0)));
                break;
            case SigAction::kOpenConnection: {
                set_dst(SigValue::new_request("GET", base_value.to_sig(), true));
                break;
            }
            case SigAction::kSetRequestMethod: {
                const std::string* verb = const_string_arg(s, 0);
                if (base_value.request && verb) base_value.request->method = *verb;
                break;
            }
            case SigAction::kGetOutputStream:
                if (base_value.request) {
                    set_dst(SigValue::stream_of(base_value.request));
                }
                break;
            case SigAction::kStreamWrite: {
                if (base_value.is(SigValue::Kind::kStream) && base_value.request) {
                    RequestStatePtr req = base_value.request;
                    Sig existing = req->body ? req->body->to_sig() : Sig::constant("");
                    req->body = std::make_shared<SigValue>(
                        SigValue::of_str(Sig::concat(std::move(existing), arg_sig(0))));
                }
                break;
            }
            case SigAction::kSocketInit: {
                // new Socket(host, port): the carrier for a raw text
                // protocol; the written stream is parsed at the DP (§4).
                Sig endpoint = Sig::concat_all(
                    {arg_sig(0), Sig::constant(":"), arg_sig(1)});
                set_base(SigValue::new_request("RAW", std::move(endpoint), true));
                break;
            }
            case SigAction::kOkRequestBuilderInit:
                set_base(SigValue::new_request("GET", Sig::unknown(), false));
                break;
            case SigAction::kOkUrl:
                if (base_value.request) {
                    base_value.request->uri = arg_sig(0);
                    base_value.request->uri_set = true;
                }
                set_dst(base_value);
                break;
            case SigAction::kOkMethod: {
                if (base_value.request) {
                    std::string verb = s.callee.method_name;
                    std::transform(verb.begin(), verb.end(), verb.begin(), ::toupper);
                    base_value.request->method = verb;
                    if (!args.empty()) {
                        base_value.request->body =
                            std::make_shared<SigValue>(arg_or_none(0));
                    }
                }
                set_dst(base_value);
                break;
            }
            case SigAction::kOkBuild:
            case SigAction::kOkNewCall:
                set_dst(action == SigAction::kOkBuild ? base_value : arg_or_none(0));
                break;
            case SigAction::kVolleyRequestInit: {
                // StringRequest(method, url, listener, err) — method codes:
                // -1/0 GET, 1 POST, 2 PUT, 3 DELETE.
                std::string verb = "GET";
                if (!s.args.empty() && s.args[0].is_constant() &&
                    s.args[0].constant.kind == Constant::Kind::kInt) {
                    switch (s.args[0].constant.int_value) {
                        case 1: verb = "POST"; break;
                        case 2: verb = "PUT"; break;
                        case 3: verb = "DELETE"; break;
                        default: verb = "GET";
                    }
                }
                SigValue req = SigValue::new_request(verb, arg_sig(1), true);
                set_base(std::move(req));
                break;
            }
            case SigAction::kVolleyAdd:
                set_dst(arg_or_none(0));
                break;

            // ------------------------------------------------- containers --
            case SigAction::kListInit:
                set_base(SigValue::new_list());
                break;
            case SigAction::kListAdd:
                if (base_value.is(SigValue::Kind::kList) && base_value.list) {
                    base_value.list->push_back(arg_or_none(0));
                }
                break;
            case SigAction::kListGet:
                if (base_value.is(SigValue::Kind::kList) && base_value.list &&
                    !base_value.list->empty()) {
                    SigValue merged = (*base_value.list)[0];
                    for (std::size_t k = 1; k < base_value.list->size(); ++k) {
                        merged = SigValue::merge(merged, (*base_value.list)[k]);
                    }
                    set_dst(merged);
                } else if (base_value.is(SigValue::Kind::kDemand) && base_value.demand) {
                    // NodeList.item on an XML element set: the item *is* the
                    // element — do not degrade the node to an array.
                    if (base_value.demand->kind == DemandNode::Kind::kXml) {
                        set_dst(base_value);
                    } else {
                        set_dst(SigValue::of_demand(base_value.demand->array_item()));
                    }
                } else {
                    set_dst(SigValue::none());
                }
                break;
            case SigAction::kMapInit:
                set_base(SigValue::new_object());
                break;

            // --------------------------------------------------- platform --
            case SigAction::kResourceGetString: {
                const std::string* id = const_string_arg(s, 0);
                if (id) {
                    out_.resource_refs.push_back(*id);
                    // The value lives in the resource table, not the code —
                    // the signature keeps it dynamic (matches the paper's
                    // api-key=(.*) rendering) but the dependency is recorded.
                }
                give_up(Sig::ValueType::kString, UnknownReason::kResourceValue,
                        id ? "res:" + *id : std::string());
                break;
            }
            case SigAction::kDbInsert:
            case SigAction::kDbUpdate: {
                const std::string* table = const_string_arg(s, 0);
                if (table) {
                    for (std::size_t ai = 1; ai < args.size(); ++ai) {
                        if (args[ai].is(SigValue::Kind::kJson) && args[ai].shared_sig) {
                            for (const auto& [col, v] : args[ai].shared_sig->members) {
                                db_["db:" + *table + "." + col] = v;
                            }
                        }
                    }
                }
                break;
            }
            case SigAction::kDbQuery:
            case SigAction::kCursorGetString:
                give_up(Sig::ValueType::kString, UnknownReason::kExternalState);
                break;
            case SigAction::kContentValuesInit:
                set_base(SigValue::json_object());
                break;
            case SigAction::kPrefsGetString: {
                const std::string* key = const_string_arg(s, 0);
                auto it = key ? prefs_.find(*key) : prefs_.end();
                if (it != prefs_.end()) {
                    set_dst(it->second);
                } else {
                    give_up(Sig::ValueType::kString, UnknownReason::kExternalState,
                            key ? "prefs:" + *key : std::string());
                }
                break;
            }
            case SigAction::kPrefsPutString: {
                const std::string* key = const_string_arg(s, 0);
                if (key) prefs_[*key] = arg_or_none(1);
                break;
            }
            case SigAction::kUserInput:
            case SigAction::kLocationGet:
            case SigAction::kMicRead:
            case SigAction::kCameraRead:
                give_up(Sig::ValueType::kString, UnknownReason::kDynamicInput);
                break;
            case SigAction::kMediaSetDataSource:
            case SigAction::kImageLoad:
            case SigAction::kFileWrite:
            case SigAction::kIntentPutExtra:
            case SigAction::kThreadExecute:
                break;  // sinks/unsupported: no value effect

            case SigAction::kNone:
            default: {
                // Generic flow-based value transfer for thin wrappers.
                if (api) {
                    for (const auto& rule : api->flows) {
                        SigValue src;
                        switch (rule.from.pos) {
                            case Role::Pos::kBase: src = base_value; break;
                            case Role::Pos::kArg:
                                src = arg_or_none(
                                    static_cast<std::size_t>(rule.from.arg_index));
                                break;
                            case Role::Pos::kReturn: continue;
                        }
                        if (src.is(SigValue::Kind::kNone)) continue;
                        switch (rule.to.pos) {
                            case Role::Pos::kReturn: set_dst(src); break;
                            case Role::Pos::kBase: set_base(src); break;
                            case Role::Pos::kArg: break;
                        }
                    }
                } else {
                    record_unmodeled();
                    if (s.dst && !propagate_demand()) {
                        give_up(Sig::ValueType::kAny, UnknownReason::kUnmodeledApi);
                    }
                }
                break;
            }
        }
    }

    static DemandNode::Kind leaf_kind_for_getter(const std::string& name) {
        if (name == "getInt") return DemandNode::Kind::kInt;
        if (name == "getBoolean") return DemandNode::Kind::kBool;
        if (name == "getString" || name == "optString") return DemandNode::Kind::kString;
        return DemandNode::Kind::kUnknown;
    }

    /// JSON member value signature from an abstract value.
    Sig json_member_sig(const SigValue& v) {
        if (v.is(SigValue::Kind::kJson) && v.shared_sig) return *v.shared_sig;
        return v.to_sig();
    }

    Sig format_sig(const std::vector<SigValue>& args) {
        if (args.empty()) return Sig::unknown();
        Sig fmt = args[0].to_sig();
        if (!fmt.is_const()) return Sig::unknown(Sig::ValueType::kString);
        std::vector<Sig> parts;
        std::size_t next_arg = 1;
        const std::string& text = fmt.text;
        std::size_t start = 0;
        for (std::size_t i = 0; i + 1 < text.size(); ++i) {
            if (text[i] != '%') continue;
            char c = text[i + 1];
            if (c != 's' && c != 'd' && c != 'f') continue;
            parts.push_back(Sig::constant(text.substr(start, i - start)));
            if (next_arg < args.size()) {
                parts.push_back(args[next_arg++].to_sig());
            } else {
                parts.push_back(Sig::unknown(
                    c == 'd' ? Sig::ValueType::kInt : Sig::ValueType::kString));
            }
            start = i + 2;
            ++i;
        }
        parts.push_back(Sig::constant(text.substr(start)));
        return Sig::concat_all(std::move(parts));
    }

    /// Eagerly expands a gson-deserialized POJO class into the demand tree.
    void expand_pojo(const DemandNodePtr& node, const std::string& class_name, int depth) {
        if (depth > 4) return;
        const Class* cls = program_->find_class(class_name);
        if (!cls) return;
        if (node->kind == DemandNode::Kind::kUnknown) node->kind = DemandNode::Kind::kObject;
        for (const auto& field : cls->fields) {
            DemandNodePtr child = node->child(field.name);
            if (child->origin.empty()) {
                child->origin = "pojo:" + class_name + "." + field.name;
                child->from_reflection = true;
            }
            if (is_array_type(field.type)) {
                child->kind = DemandNode::Kind::kArray;
                std::string element = field.type.substr(0, field.type.size() - 2);
                if (program_->find_class(element)) {
                    expand_pojo(child->array_item(), element, depth + 1);
                } else {
                    child->array_item()->narrow(demand_kind_for_type(element));
                }
            } else if (program_->find_class(field.type)) {
                expand_pojo(child, field.type, depth + 1);
            } else {
                child->narrow(demand_kind_for_type(field.type));
            }
        }
    }

    /// Serializes an app object (gson.toJson) into a JSON signature.
    Sig pojo_to_sig(const SigValue& v, int depth) {
        if (depth > 4) return Sig::unknown();
        if (v.is(SigValue::Kind::kObject) && v.object) {
            Sig obj = Sig::json_object();
            for (const auto& [field, value] : *v.object) {
                if (value.is(SigValue::Kind::kObject)) {
                    obj.set_member(field, pojo_to_sig(value, depth + 1));
                } else {
                    obj.set_member(field, value.to_sig());
                }
            }
            return obj;
        }
        if (v.is(SigValue::Kind::kJson) && v.shared_sig) return *v.shared_sig;
        return Sig::unknown();
    }

    // ----------------------------------------------------------- capture --

    void capture(const Invoke& s, const Method& method, Env& env,
                 const SigValue& base_value, const std::vector<SigValue>& args) {
        const DemarcationSpec* dp = request_->dp;
        auto role_value = [&](const Role& role) -> SigValue {
            switch (role.pos) {
                case Role::Pos::kBase: return base_value;
                case Role::Pos::kArg: {
                    auto index = static_cast<std::size_t>(role.arg_index);
                    return index < args.size() ? args[index] : SigValue::none();
                }
                case Role::Pos::kReturn: return SigValue::none();
            }
            return SigValue::none();
        };

        captured_ = true;
        out_.library = dp->library;
        if (response_root_->origin.empty()) {
            response_root_->origin = "dp:" + dp->cls + "." + dp->method;
        }
        if (dp->library == "android.media") {
            out_.consumer = semantics::ConsumerKind::kMediaPlayer;
        } else if (dp->library == "picasso") {
            out_.consumer = semantics::ConsumerKind::kImageView;
        }

        if (dp->request) {
            SigValue reqv = role_value(*dp->request);
            if (reqv.is(SigValue::Kind::kRequest) && reqv.request) {
                const RequestState& state = *reqv.request;
                if (state.method == "RAW") {
                    capture_raw_socket(state);
                } else {
                    auto parsed = http::parse_method(state.method);
                    out_.method = parsed.ok() ? parsed.value() : http::Method::kGet;
                    out_.uri = state.uri;
                    out_.headers = state.headers;
                    if (state.body) assign_body(*state.body);
                }
            } else {
                // String-URL style DP (loopj / media player / picasso).
                out_.method = dp->method == "post" ? http::Method::kPost
                                                   : http::Method::kGet;
                out_.uri = reqv.to_sig();
            }
        }

        if (dp->response && dp->response->pos == Role::Pos::kReturn && s.dst) {
            bind(env, *s.dst, SigValue::of_demand(response_root_));
        }
        if (dp->response_callback) {
            auto index = static_cast<std::size_t>(dp->response_callback->arg_index);
            if (index < s.args.size() && s.args[index].is_local()) {
                const Type& listener_type = method.locals[s.args[index].local].type;
                if (const Method* target = program_->resolve_virtual(
                        {listener_type, dp->response_callback->method})) {
                    pending_callbacks_.emplace_back(target->ref(),
                                                    dp->response_callback->param_index);
                }
            }
        }
    }

    /// §4 extension: a raw java.net.Socket transaction. The request is the
    /// text written to the output stream; when it is HTTP-shaped
    /// ("VERB <path> HTTP/1.1\r\nHeader: v\r\n\r\n<body>"), reconstruct the
    /// usual method/URI/header/body signature from the text signature.
    void capture_raw_socket(const RequestState& state) {
        Sig written = state.body ? state.body->to_sig() : Sig::constant("");
        std::vector<Sig> parts;
        if (written.kind == Sig::Kind::kConcat) {
            parts = written.children;
        } else {
            parts.push_back(written);
        }

        // Defaults if the stream is not HTTP-shaped: a raw endpoint with the
        // whole written text as an opaque body.
        out_.method = http::Method::kGet;
        out_.uri = Sig::concat(Sig::constant("tcp://"), state.uri);
        if (parts.empty() || parts[0].kind != Sig::Kind::kConst) {
            out_.has_body = !parts.empty();
            out_.body = written;
            out_.body_kind = http::BodyKind::kText;
            return;
        }

        // Verb.
        static const std::pair<const char*, http::Method> kVerbs[] = {
            {"GET ", http::Method::kGet},       {"POST ", http::Method::kPost},
            {"PUT ", http::Method::kPut},       {"DELETE ", http::Method::kDelete},
            {"HEAD ", http::Method::kHead},     {"PATCH ", http::Method::kPatch},
        };
        std::string first = parts[0].text;
        bool is_http = false;
        for (const auto& [prefix, verb] : kVerbs) {
            if (strings::starts_with(first, prefix)) {
                out_.method = verb;
                parts[0] = Sig::constant(first.substr(std::string(prefix).size()));
                is_http = true;
                break;
            }
        }
        if (!is_http) {
            out_.has_body = true;
            out_.body = written;
            out_.body_kind = http::BodyKind::kText;
            return;
        }

        // Path: parts up to the const containing " HTTP/"; then headers up
        // to the blank line; then the entity body.
        std::vector<Sig> path_parts;
        std::string headers_text;
        std::vector<Sig> body_parts;
        enum class Phase { kPath, kHeaders, kBody } phase = Phase::kPath;
        for (auto& part : parts) {
            if (phase == Phase::kPath) {
                if (part.kind == Sig::Kind::kConst) {
                    auto marker = part.text.find(" HTTP/");
                    if (marker != std::string::npos) {
                        path_parts.push_back(Sig::constant(part.text.substr(0, marker)));
                        headers_text = part.text.substr(marker);
                        auto blank = headers_text.find("\r\n\r\n");
                        if (blank != std::string::npos &&
                            blank + 4 < headers_text.size()) {
                            body_parts.push_back(
                                Sig::constant(headers_text.substr(blank + 4)));
                            headers_text = headers_text.substr(0, blank);
                            phase = Phase::kBody;
                        } else {
                            phase = Phase::kHeaders;
                        }
                        continue;
                    }
                }
                path_parts.push_back(part);
            } else if (phase == Phase::kHeaders) {
                if (part.kind == Sig::Kind::kConst) {
                    auto blank = part.text.find("\r\n\r\n");
                    if (blank != std::string::npos) {
                        headers_text += part.text.substr(0, blank);
                        if (blank + 4 < part.text.size()) {
                            body_parts.push_back(
                                Sig::constant(part.text.substr(blank + 4)));
                        }
                        phase = Phase::kBody;
                        continue;
                    }
                    headers_text += part.text;
                } else {
                    // Dynamic header values: keep them opaque.
                    headers_text += "\x01";
                }
            } else {
                body_parts.push_back(part);
            }
        }

        // Headers ("Name: value" lines after the HTTP/1.x marker).
        std::string host;
        for (const auto& line : strings::split(headers_text, '\n')) {
            std::string_view trimmed = strings::trim(line);
            auto colon = trimmed.find(':');
            if (colon == std::string_view::npos || colon == 0) continue;
            std::string name(strings::trim(trimmed.substr(0, colon)));
            std::string value(strings::trim(trimmed.substr(colon + 1)));
            if (strings::contains(name, "HTTP/") || strings::contains(name, "\x01")) {
                continue;
            }
            if (strings::to_lower(name) == "host") {
                host = value;
            } else {
                out_.headers.emplace_back(Sig::constant(name), Sig::constant(value));
            }
        }

        // URI: http://<host><path>. Fall back to the socket endpoint when no
        // Host header was written.
        Sig host_sig = host.empty() ? state.uri : Sig::constant(host);
        std::vector<Sig> uri_parts = {Sig::constant("http://"), std::move(host_sig)};
        for (auto& p : path_parts) uri_parts.push_back(std::move(p));
        out_.uri = Sig::concat_all(std::move(uri_parts));

        Sig body = Sig::concat_all(std::move(body_parts));
        if (!(body == Sig::constant(""))) {
            out_.has_body = true;
            out_.body_kind = body.kind == Sig::Kind::kJsonObject
                                 ? http::BodyKind::kJson
                                 : (body.keywords().empty() ? http::BodyKind::kText
                                                            : http::BodyKind::kQueryString);
            out_.body = std::move(body);
        }
    }

    void assign_body(const SigValue& body) {
        out_.has_body = true;
        switch (body.kind) {
            case SigValue::Kind::kList:
                out_.body = body.to_sig();
                out_.body_kind = http::BodyKind::kQueryString;
                break;
            case SigValue::Kind::kJson:
                out_.body = body.shared_sig ? *body.shared_sig : Sig::unknown();
                out_.body_kind =
                    out_.body.kind == Sig::Kind::kXmlElement ? http::BodyKind::kXml
                                                             : http::BodyKind::kJson;
                break;
            default: {
                Sig sig = body.to_sig();
                if (sig.kind == Sig::Kind::kJsonObject || sig.kind == Sig::Kind::kJsonArray) {
                    out_.body_kind = http::BodyKind::kJson;
                } else if (sig.kind == Sig::Kind::kXmlElement) {
                    out_.body_kind = http::BodyKind::kXml;
                } else {
                    // Flat text: query-string shaped if its constants carry
                    // key= markers.
                    bool has_kv = false;
                    for (const auto& kw : sig.keywords()) {
                        (void)kw;
                        has_kv = true;
                        break;
                    }
                    out_.body_kind =
                        has_kv ? http::BodyKind::kQueryString : http::BodyKind::kText;
                }
                out_.body = std::move(sig);
            }
        }
    }

    void finalize_response() {
        const DemandNode& root = *response_root_;
        if (root.kind == DemandNode::Kind::kUnknown && root.members.empty() && !root.item) {
            out_.has_response_body = false;
            return;
        }
        out_.has_response_body = true;
        out_.response_body = root.to_sig();
        switch (root.kind) {
            case DemandNode::Kind::kXml: out_.response_kind = http::BodyKind::kXml; break;
            case DemandNode::Kind::kObject:
            case DemandNode::Kind::kArray:
                out_.response_kind = http::BodyKind::kJson;
                break;
            default: out_.response_kind = http::BodyKind::kText;
        }
    }

    const Program* program_;
    const CallGraph* callgraph_;
    const semantics::SemanticModel* model_;
    const BuildRequest* request_;

    std::map<std::string, SigValue> statics_;
    std::map<std::string, Sig> db_;
    std::map<std::string, SigValue> prefs_;
    std::set<std::uint32_t> on_stack_;

    bool captured_ = false;
    std::size_t steps_ = 0;
    bool step_capped_ = false;
    /// --profile: statements executed per method (dense, non-empty only when
    /// the profiler is enabled at construction).
    std::vector<std::uint64_t> method_stmts_;
    TransactionSignature out_;
    DemandNodePtr response_root_;
    std::vector<std::pair<MethodRef, int>> pending_callbacks_;

public:
    [[nodiscard]] std::size_t steps() const { return steps_; }
    [[nodiscard]] bool step_capped() const { return step_capped_; }

    /// Flushes per-method statement counts to the global profiler and the
    /// interpreted-statement total to the innermost ProfileScope.
    void flush_profile() const {
        if (method_stmts_.empty()) return;
        obs::Profiler& profiler = obs::Profiler::global();
        const auto& methods = program_->method_table();
        for (std::uint32_t mi = 0; mi < method_stmts_.size(); ++mi) {
            if (method_stmts_[mi] == 0) continue;
            profiler.charge_method(
                obs::profile_method_key(program_->app_name,
                                        methods[mi]->ref().qualified()),
                0, method_stmts_[mi]);
        }
        obs::ProfileScope::charge_interp_stmts(steps_);
    }
};

}  // namespace

SignatureBuilder::SignatureBuilder(const Program& program, const CallGraph& callgraph,
                                   const semantics::SemanticModel& model)
    : program_(&program), callgraph_(&callgraph), model_(&model) {}

std::optional<TransactionSignature> SignatureBuilder::build(const BuildRequest& request,
                                                            BuildStats* stats) {
    obs::Span span("sig.build", "sig");
    Interp interp(*program_, *callgraph_, *model_, request);
    auto signature = interp.run();
    interp.flush_profile();
    if (stats) {
        stats->steps = interp.steps();
        stats->step_capped = interp.step_capped();
    }
    obs::counter(signature ? "sig.signatures_built" : "sig.build_failures").add(1);
    span.finish();
    obs::histogram("sig.build_ms").observe(span.seconds() * 1000.0);
    return signature;
}

}  // namespace extractocol::sig
