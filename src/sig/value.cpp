#include "sig/value.hpp"

namespace extractocol::sig {

// ------------------------------------------------------------ DemandNode --

DemandNodePtr DemandNode::child(const std::string& key) {
    if (kind != Kind::kObject && kind != Kind::kXml) kind = Kind::kObject;
    for (auto& [k, v] : members) {
        if (k == key) return v;
    }
    auto node = std::make_shared<DemandNode>();
    members.emplace_back(key, node);
    return node;
}

DemandNodePtr DemandNode::array_item() {
    kind = Kind::kArray;
    if (!item) item = std::make_shared<DemandNode>();
    return item;
}

void DemandNode::narrow(Kind leaf_kind) {
    if (kind == Kind::kUnknown) kind = leaf_kind;
}

Sig DemandNode::to_sig() const {
    // Leaves are what the app read but never constrained: the unknown carries
    // how we know it exists (reflection vs explicit consumption) and which
    // API discovered it.
    UnknownReason leaf_reason =
        from_reflection ? UnknownReason::kReflection : UnknownReason::kResponseOpaque;
    switch (kind) {
        case Kind::kUnknown:
            return Sig::unknown(Sig::ValueType::kAny, leaf_reason, origin);
        case Kind::kString:
            return Sig::unknown(Sig::ValueType::kString, leaf_reason, origin);
        case Kind::kInt: return Sig::unknown(Sig::ValueType::kInt, leaf_reason, origin);
        case Kind::kBool: return Sig::unknown(Sig::ValueType::kBool, leaf_reason, origin);
        case Kind::kArray: {
            Sig arr = Sig::json_array();
            if (item) {
                arr.children.push_back(item->to_sig());
                arr.repeated = true;
            }
            arr.origin = origin;
            return arr;
        }
        case Kind::kObject: {
            Sig obj = Sig::json_object();
            for (const auto& [k, v] : members) obj.set_member(k, v->to_sig());
            obj.origin = origin;
            return obj;
        }
        case Kind::kXml: {
            // Members starting with '@' are attributes, "#text" is character
            // data, the rest are child elements.
            Sig element = Sig::xml_element("");
            for (const auto& [k, v] : members) {
                if (k.size() > 1 && k[0] == '@') {
                    element.set_member(k.substr(1), v->to_sig());
                } else if (k == "#text") {
                    element.xml_text.push_back(v->to_sig());
                } else {
                    Sig kid = v->to_sig();
                    if (kid.kind == Sig::Kind::kXmlElement) {
                        kid.text = k;
                    } else {
                        Sig wrapper = Sig::xml_element(k);
                        wrapper.xml_text.push_back(std::move(kid));
                        kid = std::move(wrapper);
                    }
                    element.children.push_back(std::move(kid));
                }
            }
            element.origin = origin;
            return element;
        }
    }
    return Sig::unknown();
}

// -------------------------------------------------------------- SigValue --

SigValue SigValue::none(Sig::ValueType type, UnknownReason reason, std::string origin) {
    SigValue v;
    v.kind = Kind::kNone;
    v.none_type = type;
    v.none_reason = reason;
    v.none_origin = std::move(origin);
    return v;
}

SigValue SigValue::of_str(Sig s) {
    SigValue v;
    v.kind = Kind::kStr;
    v.str = std::move(s);
    return v;
}

SigValue SigValue::builder(Sig initial) {
    SigValue v;
    v.kind = Kind::kBuilder;
    v.shared_sig = std::make_shared<Sig>(std::move(initial));
    return v;
}

SigValue SigValue::json_object() {
    SigValue v;
    v.kind = Kind::kJson;
    v.shared_sig = std::make_shared<Sig>(Sig::json_object());
    return v;
}

SigValue SigValue::json_array() {
    SigValue v;
    v.kind = Kind::kJson;
    v.shared_sig = std::make_shared<Sig>(Sig::json_array());
    return v;
}

SigValue SigValue::new_list() {
    SigValue v;
    v.kind = Kind::kList;
    v.list = std::make_shared<std::vector<SigValue>>();
    return v;
}

SigValue SigValue::new_pair(Sig key, Sig value) {
    SigValue v;
    v.kind = Kind::kPair;
    v.pair = std::make_shared<std::pair<Sig, Sig>>(std::move(key), std::move(value));
    return v;
}

SigValue SigValue::new_object() {
    SigValue v;
    v.kind = Kind::kObject;
    v.object = std::make_shared<std::map<std::string, SigValue>>();
    return v;
}

SigValue SigValue::new_request(std::string method, Sig uri, bool uri_set) {
    SigValue v;
    v.kind = Kind::kRequest;
    v.request = std::make_shared<RequestState>();
    v.request->method = std::move(method);
    v.request->uri = std::move(uri);
    v.request->uri_set = uri_set;
    return v;
}

SigValue SigValue::stream_of(RequestStatePtr request) {
    SigValue v;
    v.kind = Kind::kStream;
    v.request = std::move(request);
    return v;
}

SigValue SigValue::of_demand(DemandNodePtr node) {
    SigValue v;
    v.kind = Kind::kDemand;
    v.demand = std::move(node);
    return v;
}

Sig SigValue::to_sig() const {
    switch (kind) {
        case Kind::kNone: return Sig::unknown(none_type, none_reason, none_origin);
        case Kind::kStr: return str;
        case Kind::kBuilder:
        case Kind::kJson: return shared_sig ? *shared_sig : Sig::unknown();
        case Kind::kPair:
            if (pair) {
                return Sig::concat_all({pair->first, Sig::constant("="), pair->second});
            }
            return Sig::unknown();
        case Kind::kList: {
            if (!list) return Sig::unknown();
            std::vector<Sig> parts;
            for (std::size_t i = 0; i < list->size(); ++i) {
                if (i) parts.push_back(Sig::constant("&"));
                parts.push_back((*list)[i].to_sig());
            }
            return Sig::concat_all(std::move(parts));
        }
        case Kind::kObject: return Sig::unknown();
        case Kind::kRequest:
            return request ? request->uri : Sig::unknown();
        case Kind::kStream: return Sig::unknown();
        case Kind::kDemand: {
            if (!demand) return Sig::unknown();
            if (demand->is_leaf()) return demand->to_sig();
            return Sig::unknown();  // structured value used as a string
        }
    }
    return Sig::unknown();
}

Sig merge_json_sigs(const Sig& a, const Sig& b) {
    if (a == b) return a;
    if (a.kind == Sig::Kind::kJsonObject && b.kind == Sig::Kind::kJsonObject) {
        Sig out = a;
        for (const auto& [key, value] : b.members) {
            if (Sig* existing = out.member(key)) {
                if (!(*existing == value)) {
                    *existing = existing->kind == Sig::Kind::kJsonObject &&
                                        value.kind == Sig::Kind::kJsonObject
                                    ? merge_json_sigs(*existing, value)
                                    : merge_alt(*existing, value);
                }
            } else {
                out.set_member(key, value);
            }
        }
        return out;
    }
    if (a.kind == Sig::Kind::kJsonArray && b.kind == Sig::Kind::kJsonArray) {
        Sig out = a;
        out.repeated = a.repeated || b.repeated;
        for (const auto& item : b.children) {
            bool present = false;
            for (const auto& existing : out.children) {
                if (existing == item) {
                    present = true;
                    break;
                }
            }
            if (!present) out.children.push_back(item);
        }
        return out;
    }
    return merge_alt(a, b);
}

SigValue SigValue::merge(const SigValue& a, const SigValue& b) {
    if (a.kind == Kind::kNone) return b;
    if (b.kind == Kind::kNone) return a;
    if (a.kind != b.kind) {
        // Different shapes: degrade to a string-pattern alternation.
        return of_str(merge_alt(a.to_sig(), b.to_sig()));
    }
    switch (a.kind) {
        case Kind::kStr: return of_str(merge_alt(a.str, b.str));
        case Kind::kBuilder: {
            if (a.shared_sig == b.shared_sig) return a;
            return builder(merge_alt(a.to_sig(), b.to_sig()));
        }
        case Kind::kJson: {
            if (a.shared_sig == b.shared_sig) return a;
            SigValue out;
            out.kind = Kind::kJson;
            out.shared_sig = std::make_shared<Sig>(
                merge_json_sigs(a.shared_sig ? *a.shared_sig : Sig::json_object(),
                                b.shared_sig ? *b.shared_sig : Sig::json_object()));
            return out;
        }
        case Kind::kList: {
            if (a.list == b.list) return a;
            SigValue out = new_list();
            const auto& longer = a.list->size() >= b.list->size() ? *a.list : *b.list;
            const auto& shorter = a.list->size() >= b.list->size() ? *b.list : *a.list;
            for (std::size_t i = 0; i < longer.size(); ++i) {
                if (i < shorter.size()) {
                    out.list->push_back(merge(longer[i], shorter[i]));
                } else {
                    out.list->push_back(longer[i]);
                }
            }
            return out;
        }
        case Kind::kPair: {
            if (a.pair == b.pair) return a;
            return new_pair(merge_alt(a.pair->first, b.pair->first),
                            merge_alt(a.pair->second, b.pair->second));
        }
        case Kind::kObject: {
            if (a.object == b.object) return a;
            SigValue out = new_object();
            *out.object = *a.object;
            for (const auto& [field, value] : *b.object) {
                auto it = out.object->find(field);
                if (it == out.object->end()) {
                    out.object->emplace(field, value);
                } else {
                    it->second = merge(it->second, value);
                }
            }
            return out;
        }
        case Kind::kRequest:
        case Kind::kStream: {
            if (a.request == b.request) return a;
            SigValue out;
            out.kind = a.kind;
            out.request = std::make_shared<RequestState>();
            out.request->method = a.request->method;
            out.request->uri_set = a.request->uri_set || b.request->uri_set;
            out.request->uri = a.request->uri == b.request->uri
                                   ? a.request->uri
                                   : merge_alt(a.request->uri, b.request->uri);
            out.request->headers = a.request->headers;
            for (const auto& h : b.request->headers) {
                bool present = false;
                for (const auto& existing : out.request->headers) {
                    if (existing.first == h.first && existing.second == h.second) {
                        present = true;
                        break;
                    }
                }
                if (!present) out.request->headers.push_back(h);
            }
            if (a.request->body && b.request->body) {
                out.request->body = std::make_shared<SigValue>(
                    merge(*a.request->body, *b.request->body));
            } else {
                out.request->body = a.request->body ? a.request->body : b.request->body;
            }
            return out;
        }
        case Kind::kDemand: return a;  // demand trees accumulate; either handle works
        case Kind::kNone: return a;
    }
    return a;
}

SigValue SigValue::clone(std::map<const void*, SigValue>& memo) const {
    auto memoized = [&memo](const void* key) -> const SigValue* {
        auto it = memo.find(key);
        return it == memo.end() ? nullptr : &it->second;
    };
    switch (kind) {
        case Kind::kNone:
        case Kind::kStr:
        case Kind::kDemand:  // shared by design
            return *this;
        case Kind::kBuilder:
        case Kind::kJson: {
            if (!shared_sig) return *this;
            if (const SigValue* hit = memoized(shared_sig.get())) return *hit;
            SigValue out = *this;
            out.shared_sig = std::make_shared<Sig>(*shared_sig);
            memo[shared_sig.get()] = out;
            return out;
        }
        case Kind::kList: {
            if (!list) return *this;
            if (const SigValue* hit = memoized(list.get())) return *hit;
            SigValue out = new_list();
            memo[list.get()] = out;
            for (const auto& item : *list) out.list->push_back(item.clone(memo));
            // Re-store after filling (memo holds the same shared vector).
            memo[list.get()] = out;
            return out;
        }
        case Kind::kPair: {
            if (!pair) return *this;
            if (const SigValue* hit = memoized(pair.get())) return *hit;
            SigValue out = new_pair(pair->first, pair->second);
            memo[pair.get()] = out;
            return out;
        }
        case Kind::kObject: {
            if (!object) return *this;
            if (const SigValue* hit = memoized(object.get())) return *hit;
            SigValue out = new_object();
            memo[object.get()] = out;
            for (const auto& [field, value] : *object) {
                (*out.object)[field] = value.clone(memo);
            }
            return out;
        }
        case Kind::kRequest:
        case Kind::kStream: {
            if (!request) return *this;
            if (const SigValue* hit = memoized(request.get())) return *hit;
            SigValue out = *this;
            out.request = std::make_shared<RequestState>(*request);
            if (request->body) {
                memo[request.get()] = out;  // break body->request cycles
                out.request->body =
                    std::make_shared<SigValue>(request->body->clone(memo));
            }
            memo[request.get()] = out;
            return out;
        }
    }
    return *this;
}

}  // namespace extractocol::sig
