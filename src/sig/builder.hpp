// The signature builder (§3.2): a flow-sensitive abstract interpretation of
// the program slice over the SigValue domain, walking basic blocks in
// topological (reverse post-) order, merging signature databases at
// confluence points with disjunction, and widening loop-variant string /
// array growth with rep{} at loop boundaries.
//
// One build() call reconstructs one transaction: it interprets the calling
// context from its event-handler root down to the demarcation point,
// captures the request object's state there (method, URI, headers, body),
// plants a demand-tree root for the response, and keeps interpreting to
// discover the response signature (including async listener delivery).
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "http/message.hpp"
#include "semantics/model.hpp"
#include "sig/sig.hpp"
#include "sig/value.hpp"
#include "xir/callgraph.hpp"
#include "xir/ir.hpp"

namespace extractocol::sig {

struct TransactionSignature {
    http::Method method = http::Method::kGet;
    Sig uri;
    std::vector<std::pair<Sig, Sig>> headers;

    bool has_body = false;
    Sig body;
    http::BodyKind body_kind = http::BodyKind::kNone;

    bool has_response_body = false;
    Sig response_body;
    http::BodyKind response_kind = http::BodyKind::kNone;

    std::string library;  // DP provenance ("org.apache.http", "okhttp3"...)
    semantics::ConsumerKind consumer = semantics::ConsumerKind::kNone;
    /// Resource-table ids whose values feed the request (TED's api-key).
    std::vector<std::string> resource_refs;

    [[nodiscard]] std::string uri_regex() const { return uri.to_regex(); }
};

struct BuildRequest {
    xir::StmtRef dp_site;
    const semantics::DemarcationSpec* dp = nullptr;
    /// Calling context: chain of call edges from an event-handler root to the
    /// method containing the DP (empty when the DP sits in the root itself).
    std::vector<xir::CallEdge> context;
    /// Statements the interpreter may execute (the union of the transaction's
    /// request/response slices plus augmentation). Null = interpret all.
    const std::set<xir::StmtRef>* slice = nullptr;
    /// Cap on executed statements (0 = unlimited). When hit, the build stops
    /// early and residual unknown leaves are tagged kBudgetExhausted.
    std::size_t max_steps = 0;
};

/// Deterministic cost of one build() call (the budget layer's currency).
struct BuildStats {
    std::size_t steps = 0;
    bool step_capped = false;
};

class SignatureBuilder {
public:
    SignatureBuilder(const xir::Program& program, const xir::CallGraph& callgraph,
                     const semantics::SemanticModel& model);

    /// Builds the signature for one transaction context. Returns nullopt if
    /// the DP was never reached along the given context. `stats`, when
    /// non-null, receives the executed-statement count and whether the
    /// BuildRequest::max_steps cap fired.
    [[nodiscard]] std::optional<TransactionSignature> build(const BuildRequest& request,
                                                            BuildStats* stats = nullptr);

private:
    const xir::Program* program_;
    const xir::CallGraph* callgraph_;
    const semantics::SemanticModel* model_;
};

}  // namespace extractocol::sig
