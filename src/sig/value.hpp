// The abstract-value domain of the signature builder (§3.2). Values model
// the protocol-relevant objects a slice manipulates: strings (as Sig
// patterns), mutable string builders, JSON/XML trees under construction,
// name-value-pair lists, HTTP request objects, plain app objects (field
// maps), and *demand trees* for response processing.
//
// Demand trees capture the response-side signature: the response body is an
// opaque value whose shape is discovered from how the app consumes it —
// every getString("relay") / getJSONArray("songs") refines the tree. This is
// why (matching the paper) response signatures only contain the keys the app
// actually inspects.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sig/sig.hpp"

namespace extractocol::sig {

struct DemandNode;
using DemandNodePtr = std::shared_ptr<DemandNode>;

struct DemandNode {
    enum class Kind { kUnknown, kString, kInt, kBool, kObject, kArray, kXml };
    Kind kind = Kind::kUnknown;
    /// kObject: JSON members / XML children ("@name" = attribute, "#text" =
    /// character data). Order preserved (discovery order).
    std::vector<std::pair<std::string, DemandNodePtr>> members;
    DemandNodePtr item;  // kArray element shape
    /// Provenance: the API symbol (or POJO field) whose consumption
    /// discovered this node; first discovery wins.
    std::string origin;
    /// True when the node was materialized by reflective deserialization
    /// (gson.fromJson POJO expansion) rather than an explicit read.
    bool from_reflection = false;

    /// Gets or creates the named child, promoting this node to kObject.
    DemandNodePtr child(const std::string& key);
    /// Gets or creates the array item node, promoting this node to kArray.
    DemandNodePtr array_item();

    /// Narrows the leaf type (kUnknown -> specific; conflicting -> kUnknown).
    void narrow(Kind leaf_kind);

    /// Renders the discovered shape as a Sig tree (kJsonObject / kJsonArray /
    /// kXmlElement with kUnknown leaves).
    [[nodiscard]] Sig to_sig() const;

    [[nodiscard]] bool is_leaf() const {
        return kind != Kind::kObject && kind != Kind::kArray;
    }
};

struct RequestState;
using RequestStatePtr = std::shared_ptr<RequestState>;

class SigValue;

struct RequestState {
    std::string method = "GET";
    Sig uri;
    bool uri_set = false;
    std::vector<std::pair<Sig, Sig>> headers;
    std::shared_ptr<SigValue> body;  // null until set
};

/// One abstract value. Copyable; object-like kinds share state through
/// shared_ptr so aliases observe mutations (StringBuilder, JSON trees...).
class SigValue {
public:
    enum class Kind {
        kNone,     // no information (renders as a typed unknown)
        kStr,      // immutable string pattern
        kBuilder,  // mutable string builder
        kJson,     // mutable JSON tree under construction (object or array)
        kList,     // list of values (e.g. name-value pairs)
        kPair,     // (key, value) signature pair
        kObject,   // app object: named-field map
        kRequest,  // HTTP request under construction
        kStream,   // output stream bound to a request body
        kDemand,   // response-derived value (demand tree node)
    };

    Kind kind = Kind::kNone;
    Sig::ValueType none_type = Sig::ValueType::kAny;  // type hint for kNone
    /// Provenance for kNone: why the value is unknown and which API/site
    /// produced it. Carried into the rendered Sig::unknown leaf.
    UnknownReason none_reason = UnknownReason::kUnspecified;
    std::string none_origin;
    Sig str;                                          // kStr
    std::shared_ptr<Sig> shared_sig;                  // kBuilder / kJson
    std::shared_ptr<std::vector<SigValue>> list;      // kList
    std::shared_ptr<std::pair<Sig, Sig>> pair;        // kPair
    std::shared_ptr<std::map<std::string, SigValue>> object;  // kObject
    RequestStatePtr request;                          // kRequest / kStream
    DemandNodePtr demand;                             // kDemand

    SigValue() = default;

    static SigValue none(Sig::ValueType type = Sig::ValueType::kAny,
                         UnknownReason reason = UnknownReason::kUnspecified,
                         std::string origin = {});
    static SigValue of_str(Sig s);
    static SigValue builder(Sig initial);
    static SigValue json_object();
    static SigValue json_array();
    static SigValue new_list();
    static SigValue new_pair(Sig key, Sig value);
    static SigValue new_object();
    static SigValue new_request(std::string method, Sig uri, bool uri_set);
    static SigValue stream_of(RequestStatePtr request);
    static SigValue of_demand(DemandNodePtr node);

    [[nodiscard]] bool is(Kind k) const { return kind == k; }

    /// The string pattern this value contributes when used in string context
    /// (append, concat, entity body...). Demand values render as unknowns;
    /// JSON trees render as their structural sig.
    [[nodiscard]] Sig to_sig() const;

    /// Merge at CFG confluence points: same underlying cell -> unchanged;
    /// different cells -> fresh cell holding the member-wise / alternation
    /// merge (the paper's "merge the signature database ... with logical
    /// disjunction").
    static SigValue merge(const SigValue& a, const SigValue& b);

    /// Deep copy for branch-local mutation: every mutable cell reachable
    /// from this value is duplicated, preserving aliasing via `memo` (keyed
    /// by the original cell address). Demand trees are intentionally shared:
    /// response-shape discovery accumulates across branches.
    [[nodiscard]] SigValue clone(std::map<const void*, SigValue>& memo) const;
};

/// Disjunction merge of two JSON signature trees (member-wise for objects).
Sig merge_json_sigs(const Sig& a, const Sig& b);

}  // namespace extractocol::sig
