#include "sig/sig.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "text/regex.hpp"

namespace extractocol::sig {

const char* unknown_reason_name(UnknownReason reason) {
    switch (reason) {
        case UnknownReason::kUnspecified: return "unspecified";
        case UnknownReason::kUnmodeledApi: return "unmodeled_api";
        case UnknownReason::kDerivedString: return "derived_string";
        case UnknownReason::kLoopWidened: return "loop_widened";
        case UnknownReason::kDisjunctionCapped: return "disjunction_capped";
        case UnknownReason::kTaintDepthCutoff: return "taint_depth_cutoff";
        case UnknownReason::kReflection: return "reflection";
        case UnknownReason::kDynamicInput: return "dynamic_input";
        case UnknownReason::kExternalState: return "external_state";
        case UnknownReason::kResourceValue: return "resource_value";
        case UnknownReason::kResponseOpaque: return "response_opaque";
        case UnknownReason::kBudgetExhausted: return "budget_exhausted";
    }
    return "unspecified";
}

// ----------------------------------------------------------- constructors --

Sig Sig::constant(std::string value) {
    Sig s;
    s.kind = Kind::kConst;
    s.text = std::move(value);
    return s;
}

Sig Sig::unknown(ValueType type, UnknownReason reason, std::string origin) {
    Sig s;
    s.kind = Kind::kUnknown;
    s.value_type = type;
    s.reason = reason;
    s.origin = std::move(origin);
    return s;
}

Sig Sig::concat(Sig a, Sig b) { return concat_all({std::move(a), std::move(b)}); }

Sig Sig::concat_all(std::vector<Sig> parts) {
    Sig s;
    s.kind = Kind::kConcat;
    for (auto& part : parts) {
        if (part.kind == Kind::kConcat) {
            for (auto& inner : part.children) s.children.push_back(std::move(inner));
        } else if (part.kind == Kind::kConst && part.text.empty()) {
            continue;  // empty literal is the concat identity
        } else {
            s.children.push_back(std::move(part));
        }
    }
    // Fold adjacent constants.
    std::vector<Sig> folded;
    for (auto& part : s.children) {
        if (!folded.empty() && folded.back().kind == Kind::kConst &&
            part.kind == Kind::kConst) {
            folded.back().text += part.text;
        } else {
            folded.push_back(std::move(part));
        }
    }
    s.children = std::move(folded);
    if (s.children.empty()) return constant("");
    if (s.children.size() == 1) return std::move(s.children[0]);
    return s;
}

Sig Sig::alt(Sig a, Sig b) {
    if (a == b) return a;
    Sig s;
    s.kind = Kind::kAlt;
    auto absorb = [&s](Sig v) {
        if (v.kind == Kind::kAlt) {
            for (auto& inner : v.children) s.children.push_back(std::move(inner));
        } else {
            s.children.push_back(std::move(v));
        }
    };
    absorb(std::move(a));
    absorb(std::move(b));
    // Deduplicate branches.
    std::vector<Sig> unique;
    for (auto& branch : s.children) {
        bool seen = false;
        for (const auto& u : unique) {
            if (u == branch) {
                seen = true;
                break;
            }
        }
        if (!seen) unique.push_back(std::move(branch));
    }
    s.children = std::move(unique);
    if (s.children.size() == 1) return std::move(s.children[0]);
    // Past the arm cap the disjunction stops describing anything an operator
    // could act on; collapse it to an audited unknown instead of growing an
    // unbounded (and regex-hostile) alternation.
    if (s.children.size() > kMaxAltArms) {
        obs::counter("sig.unknown_reason.disjunction_capped").add(1);
        return unknown(ValueType::kAny, UnknownReason::kDisjunctionCapped, "alt");
    }
    return s;
}

Sig Sig::rep(Sig body) {
    Sig s;
    s.kind = Kind::kRep;
    s.children.push_back(std::move(body));
    return s;
}

Sig Sig::json_object() {
    Sig s;
    s.kind = Kind::kJsonObject;
    return s;
}

Sig Sig::json_array() {
    Sig s;
    s.kind = Kind::kJsonArray;
    return s;
}

Sig Sig::xml_element(std::string tag) {
    Sig s;
    s.kind = Kind::kXmlElement;
    s.text = std::move(tag);
    return s;
}

// ------------------------------------------------------------- structure --

bool Sig::operator==(const Sig& other) const {
    if (kind != other.kind || value_type != other.value_type || text != other.text ||
        repeated != other.repeated) {
        return false;
    }
    return children == other.children && members == other.members &&
           xml_text == other.xml_text;
}

bool Sig::is_pure_wildcard() const {
    switch (kind) {
        case Kind::kConst: return text.empty();
        case Kind::kUnknown: return true;
        case Kind::kConcat:
        case Kind::kAlt:
        case Kind::kRep:
        case Kind::kJsonArray:
            return std::all_of(children.begin(), children.end(),
                               [](const Sig& c) { return c.is_pure_wildcard(); });
        case Kind::kJsonObject: return members.empty();
        case Kind::kXmlElement: return false;  // the tag itself is a constant
    }
    return false;
}

void Sig::set_member(const std::string& key, Sig value) {
    for (auto& [k, v] : members) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    members.emplace_back(key, std::move(value));
}

const Sig* Sig::member(const std::string& key) const {
    for (const auto& [k, v] : members) {
        if (k == key) return &v;
    }
    return nullptr;
}

Sig* Sig::member(const std::string& key) {
    for (auto& [k, v] : members) {
        if (k == key) return &v;
    }
    return nullptr;
}

// -------------------------------------------------------------- renderings --

namespace {

void regex_of(const Sig& s, std::string& out);

void regex_of_json_value(const Sig& s, std::string& out) {
    switch (s.kind) {
        case Sig::Kind::kJsonObject:
        case Sig::Kind::kJsonArray:
            regex_of(s, out);
            break;
        case Sig::Kind::kConst:
            // A constant leaf may be a string or number in serialized form;
            // accept an optionally-quoted rendering.
            out += "\"?";
            out += text::Regex::escape(s.text);
            out += "\"?";
            break;
        case Sig::Kind::kUnknown:
            if (s.value_type == Sig::ValueType::kInt) {
                out += "\"?-?[0-9]+\"?";
            } else if (s.value_type == Sig::ValueType::kBool) {
                out += "(true|false|\"true\"|\"false\"|\"TRUE\"|\"FALSE\")";
            } else {
                out += "(\"(\\\\\"|[^\"])*\"|[^,}\\]]*)";
            }
            break;
        default:
            regex_of(s, out);
    }
}

void regex_of(const Sig& s, std::string& out) {
    switch (s.kind) {
        case Sig::Kind::kConst:
            out += text::Regex::escape(s.text);
            break;
        case Sig::Kind::kUnknown:
            out += s.value_type == Sig::ValueType::kInt ? "[0-9]+" : ".*";
            break;
        case Sig::Kind::kConcat:
            for (const auto& c : s.children) regex_of(c, out);
            break;
        case Sig::Kind::kAlt: {
            out += "(";
            for (std::size_t i = 0; i < s.children.size(); ++i) {
                if (i) out += "|";
                regex_of(s.children[i], out);
            }
            out += ")";
            break;
        }
        case Sig::Kind::kRep: {
            out += "(";
            regex_of(s.children[0], out);
            out += ")*";
            break;
        }
        case Sig::Kind::kJsonObject: {
            // Canonical serialization: members in recorded order, arbitrary
            // whitespace not modeled (our traces are compact JSON).
            out += "\\{";
            for (std::size_t i = 0; i < s.members.size(); ++i) {
                if (i) out += ",";
                out += "\"";
                out += text::Regex::escape(s.members[i].first);
                out += "\":";
                regex_of_json_value(s.members[i].second, out);
            }
            out += "\\}";
            break;
        }
        case Sig::Kind::kJsonArray: {
            out += "\\[";
            if (!s.children.empty()) {
                std::string item;
                regex_of_json_value(s.children[0], item);
                if (s.repeated) {
                    out += "(" + item + ")?(," + item + ")*";
                } else {
                    for (std::size_t i = 0; i < s.children.size(); ++i) {
                        if (i) out += ",";
                        regex_of_json_value(s.children[i], out);
                    }
                }
            } else {
                out += ".*";
            }
            out += "\\]";
            break;
        }
        case Sig::Kind::kXmlElement: {
            out += "<";
            // An unknown root tag (the app never names it) matches any name.
            out += s.text.empty() ? "[^ />]*" : text::Regex::escape(s.text);
            for (const auto& [k, v] : s.members) {
                out += ".*";
                out += text::Regex::escape(k);
                out += "=\"";
                regex_of(v, out);
                out += "\"";
            }
            out += ".*";  // rest of the open tag, text, unmodeled attributes
            for (const auto& c : s.children) {
                regex_of(c, out);
                out += ".*";
            }
            break;
        }
    }
}

void display_of(const Sig& s, std::string& out) {
    switch (s.kind) {
        case Sig::Kind::kConst:
            out += "(" + s.text + ")";
            break;
        case Sig::Kind::kUnknown:
            out += s.value_type == Sig::ValueType::kInt ? "[0-9]+" : ".*";
            break;
        case Sig::Kind::kConcat:
            for (const auto& c : s.children) display_of(c, out);
            break;
        case Sig::Kind::kAlt: {
            out += "(";
            for (std::size_t i = 0; i < s.children.size(); ++i) {
                if (i) out += " | ";
                std::string branch;
                display_of(s.children[i], branch);
                out += branch;
            }
            out += ")";
            break;
        }
        case Sig::Kind::kRep: {
            std::string body;
            display_of(s.children[0], body);
            out += "rep{" + body + "}";
            break;
        }
        default: {
            out += s.to_json_schema().dump();
        }
    }
}

}  // namespace

std::string Sig::to_regex() const {
    std::string out;
    regex_of(*this, out);
    return out;
}

std::string Sig::to_display() const {
    std::string out;
    display_of(*this, out);
    return out;
}

text::Json Sig::to_json_schema() const {
    switch (kind) {
        case Kind::kConst: {
            text::Json obj = text::Json::object();
            obj.set("const", text::Json(text));
            return obj;
        }
        case Kind::kUnknown: {
            text::Json obj = text::Json::object();
            switch (value_type) {
                case ValueType::kInt: obj.set("type", text::Json("integer")); break;
                case ValueType::kBool: obj.set("type", text::Json("boolean")); break;
                case ValueType::kString: obj.set("type", text::Json("string")); break;
                case ValueType::kAny: obj.set("type", text::Json("any")); break;
            }
            return obj;
        }
        case Kind::kJsonObject: {
            text::Json obj = text::Json::object();
            obj.set("type", text::Json("object"));
            text::Json props = text::Json::object();
            for (const auto& [k, v] : members) props.set(k, v.to_json_schema());
            obj.set("properties", std::move(props));
            return obj;
        }
        case Kind::kJsonArray: {
            text::Json obj = text::Json::object();
            obj.set("type", text::Json("array"));
            if (!children.empty()) obj.set("items", children[0].to_json_schema());
            return obj;
        }
        case Kind::kXmlElement: {
            text::Json obj = text::Json::object();
            obj.set("type", text::Json("xml"));
            obj.set("tag", text::Json(text));
            if (!members.empty()) {
                text::Json attrs = text::Json::object();
                for (const auto& [k, v] : members) attrs.set(k, v.to_json_schema());
                obj.set("attributes", std::move(attrs));
            }
            if (!children.empty()) {
                text::Json kids = text::Json::array();
                for (const auto& c : children) kids.push_back(c.to_json_schema());
                obj.set("children", std::move(kids));
            }
            return obj;
        }
        default: {
            text::Json obj = text::Json::object();
            obj.set("pattern", text::Json(to_regex()));
            return obj;
        }
    }
}

text::Json Sig::to_provenance_json() const {
    text::Json node = text::Json::object();
    switch (kind) {
        case Kind::kConst:
            node.set("kind", text::Json("const"));
            node.set("text", text::Json(text));
            break;
        case Kind::kUnknown: {
            node.set("kind", text::Json("unknown"));
            switch (value_type) {
                case ValueType::kInt: node.set("type", text::Json("integer")); break;
                case ValueType::kBool: node.set("type", text::Json("boolean")); break;
                case ValueType::kString: node.set("type", text::Json("string")); break;
                case ValueType::kAny: node.set("type", text::Json("any")); break;
            }
            node.set("reason", text::Json(std::string(unknown_reason_name(reason))));
            break;
        }
        case Kind::kConcat:
        case Kind::kAlt:
        case Kind::kRep: {
            node.set("kind", text::Json(kind == Kind::kConcat
                                            ? "concat"
                                            : (kind == Kind::kAlt ? "alt" : "rep")));
            text::Json parts = text::Json::array();
            for (const auto& c : children) parts.push_back(c.to_provenance_json());
            node.set(kind == Kind::kAlt ? "arms" : "parts", std::move(parts));
            break;
        }
        case Kind::kJsonObject: {
            node.set("kind", text::Json("json_object"));
            text::Json props = text::Json::object();
            for (const auto& [k, v] : members) props.set(k, v.to_provenance_json());
            node.set("members", std::move(props));
            break;
        }
        case Kind::kJsonArray: {
            node.set("kind", text::Json("json_array"));
            if (repeated) node.set("repeated", text::Json(true));
            text::Json items = text::Json::array();
            for (const auto& c : children) items.push_back(c.to_provenance_json());
            node.set("items", std::move(items));
            break;
        }
        case Kind::kXmlElement: {
            node.set("kind", text::Json("xml_element"));
            node.set("tag", text::Json(text));
            if (!members.empty()) {
                text::Json attrs = text::Json::object();
                for (const auto& [k, v] : members) attrs.set(k, v.to_provenance_json());
                node.set("attributes", std::move(attrs));
            }
            if (!children.empty()) {
                text::Json kids = text::Json::array();
                for (const auto& c : children) kids.push_back(c.to_provenance_json());
                node.set("children", std::move(kids));
            }
            if (!xml_text.empty()) {
                node.set("text_content", xml_text[0].to_provenance_json());
            }
            break;
        }
    }
    if (!origin.empty()) node.set("origin", text::Json(origin));
    return node;
}

std::size_t Sig::count_unknown_reasons(
    std::vector<std::pair<std::string, std::size_t>>& out) const {
    if (kind == Kind::kUnknown) {
        std::string name = unknown_reason_name(reason);
        for (auto& [n, c] : out) {
            if (n == name) {
                ++c;
                return 1;
            }
        }
        out.emplace_back(std::move(name), 1);
        return 1;
    }
    std::size_t n = 0;
    for (const auto& c : children) n += c.count_unknown_reasons(out);
    for (const auto& [k, v] : members) {
        (void)k;
        n += v.count_unknown_reasons(out);
    }
    for (const auto& t : xml_text) n += t.count_unknown_reasons(out);
    return n;
}

namespace {
void dtd_of(const Sig& s, std::string& out) {
    if (s.kind != Sig::Kind::kXmlElement) return;
    out += "<!ELEMENT " + s.text + " ";
    if (s.children.empty()) {
        out += s.xml_text.empty() ? "EMPTY" : "(#PCDATA)";
    } else {
        out += "(";
        for (std::size_t i = 0; i < s.children.size(); ++i) {
            if (i) out += ",";
            out += s.children[i].text;
            if (s.children[i].repeated) out += "*";
        }
        out += ")";
    }
    out += ">\n";
    for (const auto& [attr, value] : s.members) {
        (void)value;
        out += "<!ATTLIST " + s.text + " " + attr + " CDATA #IMPLIED>\n";
    }
    for (const auto& c : s.children) dtd_of(c, out);
}
}  // namespace

std::string Sig::to_dtd() const {
    std::string out;
    dtd_of(*this, out);
    return out;
}

// --------------------------------------------------------------- analytics --

void Sig::collect_keywords(std::vector<std::string>& out, bool in_structure) const {
    switch (kind) {
        case Kind::kJsonObject:
            for (const auto& [k, v] : members) {
                out.push_back(k);
                v.collect_keywords(out, true);
            }
            break;
        case Kind::kJsonArray:
        case Kind::kConcat:
        case Kind::kAlt:
        case Kind::kRep:
            for (const auto& c : children) c.collect_keywords(out, in_structure);
            break;
        case Kind::kXmlElement:
            out.push_back(text);
            for (const auto& [k, v] : members) {
                out.push_back(k);
                v.collect_keywords(out, true);
            }
            for (const auto& c : children) c.collect_keywords(out, true);
            for (const auto& t : xml_text) t.collect_keywords(out, true);
            break;
        case Kind::kConst: {
            if (in_structure) break;  // constant *values* inside JSON are not keys
            // Flat strings (query strings / URI): keys are the tokens that
            // look like "key=" between separators.
            const std::string& t = text;
            std::size_t start = 0;
            while (start < t.size()) {
                auto eq = t.find('=', start);
                if (eq == std::string::npos) break;
                std::size_t key_start = t.rfind('&', eq);
                key_start = (key_start == std::string::npos || key_start < start)
                                ? start
                                : key_start + 1;
                auto qmark = t.rfind('?', eq);
                if (qmark != std::string::npos && qmark >= key_start) {
                    key_start = qmark + 1;
                }
                if (eq > key_start) out.push_back(t.substr(key_start, eq - key_start));
                start = eq + 1;
            }
            break;
        }
        case Kind::kUnknown: break;
    }
}

std::vector<std::string> Sig::keywords() const {
    std::vector<std::string> out;
    collect_keywords(out, false);
    return out;
}

std::size_t Sig::constant_bytes() const {
    std::size_t n = 0;
    switch (kind) {
        case Kind::kConst: return text.size();
        case Kind::kUnknown: return 0;
        case Kind::kXmlElement:
            n += text.size();
            [[fallthrough]];
        case Kind::kJsonObject:
            for (const auto& [k, v] : members) n += k.size() + v.constant_bytes();
            for (const auto& c : children) n += c.constant_bytes();
            for (const auto& t : xml_text) n += t.constant_bytes();
            return n;
        default:
            for (const auto& c : children) n += c.constant_bytes();
            return n;
    }
}

// ------------------------------------------------------------------ merges --

Sig merge_alt(Sig a, Sig b) { return Sig::alt(std::move(a), std::move(b)); }

void tag_unknowns(Sig& s, UnknownReason reason, const std::string& origin) {
    if (s.kind == Sig::Kind::kUnknown) {
        if (s.reason == UnknownReason::kUnspecified) {
            s.reason = reason;
            if (s.origin.empty()) s.origin = origin;
        }
        return;
    }
    for (auto& c : s.children) tag_unknowns(c, reason, origin);
    for (auto& [k, v] : s.members) {
        (void)k;
        tag_unknowns(v, reason, origin);
    }
    for (auto& t : s.xml_text) tag_unknowns(t, reason, origin);
}

Sig widen_loop(const Sig& base, const Sig& grown) {
    if (base == grown) return base;
    obs::counter("sig.unknown_reason.loop_widened").add(1);
    // JSON arrays grown inside a loop become repeated.
    if (base.kind == Sig::Kind::kJsonArray && grown.kind == Sig::Kind::kJsonArray) {
        Sig out = grown;
        if (!out.children.empty()) {
            out.children.resize(1);
            out.repeated = true;
        }
        out.origin = "loop";
        return out;
    }
    // String growth: find the common prefix of the flattened concat forms and
    // wrap the variant tail in rep{}.
    auto flatten = [](const Sig& s) -> std::vector<Sig> {
        if (s.kind == Sig::Kind::kConcat) return s.children;
        return {s};
    };
    std::vector<Sig> base_parts = flatten(base);
    std::vector<Sig> grown_parts = flatten(grown);
    std::size_t common = 0;
    while (common < base_parts.size() && common < grown_parts.size() &&
           base_parts[common] == grown_parts[common]) {
        ++common;
    }
    // Constant folding may have merged the shared literal with the loop
    // body's first literal: split "pfx&k=" against base "pfx".
    if (common + 1 == base_parts.size() && common < grown_parts.size() &&
        base_parts[common].kind == Sig::Kind::kConst &&
        grown_parts[common].kind == Sig::Kind::kConst &&
        grown_parts[common].text.size() > base_parts[common].text.size() &&
        grown_parts[common].text.compare(0, base_parts[common].text.size(),
                                         base_parts[common].text) == 0) {
        grown_parts[common] = Sig::constant(
            grown_parts[common].text.substr(base_parts[common].text.size()));
        grown_parts.insert(grown_parts.begin() + static_cast<std::ptrdiff_t>(common),
                           base_parts[common]);
        ++common;
    }
    if (common == base_parts.size() && grown_parts.size() > common) {
        std::vector<Sig> tail(grown_parts.begin() + static_cast<std::ptrdiff_t>(common),
                              grown_parts.end());
        std::vector<Sig> out = base_parts;
        Sig body = Sig::concat_all(std::move(tail));
        tag_unknowns(body, UnknownReason::kLoopWidened, "loop");
        Sig repeated = Sig::rep(std::move(body));
        repeated.origin = "loop";
        out.push_back(std::move(repeated));
        return Sig::concat_all(std::move(out));
    }
    // Unrelated growth: fall back to a rep-absorbed alternation so the
    // fixpoint terminates.
    if (grown.kind == Sig::Kind::kConcat && !grown_parts.empty() &&
        grown_parts.back().kind == Sig::Kind::kRep) {
        return grown;  // already widened
    }
    Sig out = merge_alt(base, grown);
    if (out.origin.empty()) out.origin = "loop";
    return out;
}

}  // namespace extractocol::sig
