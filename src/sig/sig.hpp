// The signature intermediate language of Fig. 4:
//
//   sig_pat ::= term | concat(term, term) | rep{term} | term ∨ term
//   term    ::= constant | struct_str | unknown
//   struct_str ::= json(obj) | xml(obj)
//   obj     ::= key_value*      key_value ::= (key, value)
//   value   ::= constant | obj | array      constant ::= num int | str string
//
// Sig is a value-semantic tree with normalization (constant folding of
// adjacent concat literals, alternation dedup) plus the three renderings the
// paper uses: regular expressions, JSON-schema-like trees, and DTDs for XML.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "text/json.hpp"

namespace extractocol::sig {

class Sig {
public:
    enum class Kind {
        kConst,       // string literal
        kUnknown,     // wildcard with a type hint
        kConcat,      // juxtaposition
        kAlt,         // disjunction
        kRep,         // Kleene repetition of the single child
        kJsonObject,  // ordered key/value members
        kJsonArray,   // item signatures; `repeated` marks rep{}
        kXmlElement,  // tag + attributes + children (+ text)
    };

    /// Type hint for unknowns — drives the regex class ([0-9]+ vs .*).
    enum class ValueType { kString, kInt, kBool, kAny };

    Kind kind = Kind::kUnknown;
    ValueType value_type = ValueType::kAny;   // kUnknown
    std::string text;                         // kConst; kXmlElement: tag name
    std::vector<Sig> children;                // kConcat/kAlt/kRep(1)/kJsonArray/kXml children
    std::vector<std::pair<std::string, Sig>> members;  // kJsonObject / kXml attributes
    std::vector<Sig> xml_text;                // kXmlElement character data (0 or 1)
    bool repeated = false;                    // kJsonArray: items repeat

    Sig() = default;

    // ------------------------------------------------------ constructors --
    static Sig constant(std::string value);
    static Sig unknown(ValueType type = ValueType::kAny);
    static Sig concat(Sig a, Sig b);
    static Sig concat_all(std::vector<Sig> parts);
    static Sig alt(Sig a, Sig b);
    static Sig rep(Sig body);
    static Sig json_object();
    static Sig json_array();
    static Sig xml_element(std::string tag);

    [[nodiscard]] bool is_const() const { return kind == Kind::kConst; }
    [[nodiscard]] bool is_unknown() const { return kind == Kind::kUnknown; }
    /// True if this signature contains no constants at all (pure wildcard).
    [[nodiscard]] bool is_pure_wildcard() const;

    /// Structural equality.
    bool operator==(const Sig& other) const;

    /// Sets (or merges) a JSON-object member.
    void set_member(const std::string& key, Sig value);
    [[nodiscard]] const Sig* member(const std::string& key) const;
    [[nodiscard]] Sig* member(const std::string& key);

    // -------------------------------------------------------- renderings --
    /// Regular expression (anchored use). JSON/XML sub-trees render as the
    /// regex of their canonical serialization.
    [[nodiscard]] std::string to_regex() const;

    /// Human-readable pattern: constants verbatim, unknowns as (.*) / [0-9]+,
    /// the paper's display style e.g. "(user=).*(&passwd=)(&api_type=json)".
    [[nodiscard]] std::string to_display() const;

    /// JSON-schema-like description for kJsonObject/kJsonArray trees.
    [[nodiscard]] text::Json to_json_schema() const;

    /// DTD for XML signature trees (paper §1: "Document Type Definition for
    /// XML ... JSON schema for JSON bodies").
    [[nodiscard]] std::string to_dtd() const;

    // --------------------------------------------------------- analytics --
    /// All constant keywords (JSON keys, XML tags/attributes, query-string
    /// keys) contained in this signature — the Fig. 7 metric.
    [[nodiscard]] std::vector<std::string> keywords() const;

    /// Total bytes of constant text (for signature-quality metrics).
    [[nodiscard]] std::size_t constant_bytes() const;

private:
    void collect_keywords(std::vector<std::string>& out, bool in_structure) const;
};

/// Normalized merge used at CFG confluence points: equal → either; otherwise
/// a deduplicated alternation (Fig. 4's ∨).
Sig merge_alt(Sig a, Sig b);

/// Loop-header widening: if `grown` extends `base` by a suffix, returns
/// concat(base, rep(suffix)); otherwise falls back to alternation. This is
/// the "identify the loop variant part ... mark the part can be repeated"
/// rule (§3.2).
Sig widen_loop(const Sig& base, const Sig& grown);

}  // namespace extractocol::sig
