// The signature intermediate language of Fig. 4:
//
//   sig_pat ::= term | concat(term, term) | rep{term} | term ∨ term
//   term    ::= constant | struct_str | unknown
//   struct_str ::= json(obj) | xml(obj)
//   obj     ::= key_value*      key_value ::= (key, value)
//   value   ::= constant | obj | array      constant ::= num int | str string
//
// Sig is a value-semantic tree with normalization (constant folding of
// adjacent concat literals, alternation dedup) plus the three renderings the
// paper uses: regular expressions, JSON-schema-like trees, and DTDs for XML.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "text/json.hpp"

namespace extractocol::sig {

/// Why an unknown leaf is unknown — the imprecision taxonomy (DESIGN.md §9).
/// Every place the builder/interpreter gives up stamps the reason it did, so
/// the audit layer can attribute wildcard bytes to analysis gaps instead of
/// reporting one undifferentiated `.*`.
enum class UnknownReason : std::uint8_t {
    kUnspecified,        // legacy / genuinely free value
    kUnmodeledApi,       // call to an API with no semantics/model entry
    kDerivedString,      // substring/replace/encode of a dynamic value
    kLoopWidened,        // value grown in a loop, widened to rep{}
    kDisjunctionCapped,  // alternation exceeded the arm cap
    kTaintDepthCutoff,   // interpreter depth / recursion limit hit
    kReflection,         // gson-style reflective (de)serialization
    kDynamicInput,       // user input / sensor / location at runtime
    kExternalState,      // database / SharedPreferences cell not in slice
    kResourceValue,      // value lives in the resource table, not the code
    kResponseOpaque,     // response byte range the app never inspects
    kBudgetExhausted,    // analysis step budget ran out mid-build
};

/// Stable snake_case name used in counters, audit tables, and JSON.
[[nodiscard]] const char* unknown_reason_name(UnknownReason reason);

class Sig {
public:
    enum class Kind {
        kConst,       // string literal
        kUnknown,     // wildcard with a type hint
        kConcat,      // juxtaposition
        kAlt,         // disjunction
        kRep,         // Kleene repetition of the single child
        kJsonObject,  // ordered key/value members
        kJsonArray,   // item signatures; `repeated` marks rep{}
        kXmlElement,  // tag + attributes + children (+ text)
    };

    /// Type hint for unknowns — drives the regex class ([0-9]+ vs .*).
    enum class ValueType { kString, kInt, kBool, kAny };

    Kind kind = Kind::kUnknown;
    ValueType value_type = ValueType::kAny;   // kUnknown
    std::string text;                         // kConst; kXmlElement: tag name
    std::vector<Sig> children;                // kConcat/kAlt/kRep(1)/kJsonArray/kXml children
    std::vector<std::pair<std::string, Sig>> members;  // kJsonObject / kXml attributes
    std::vector<Sig> xml_text;                // kXmlElement character data (0 or 1)
    bool repeated = false;                    // kJsonArray: items repeat

    // ------------------------------------------------------- provenance --
    // Where this segment came from (DP site, IR instruction, API symbol,
    // "loop"...) and — for unknowns — why the analysis gave up. Both fields
    // are metadata: operator== ignores them, so normalization (constant
    // folding, alternation dedup, widening fixpoints) and every rendering
    // are byte-identical to a provenance-free tree.
    UnknownReason reason = UnknownReason::kUnspecified;
    std::string origin;

    Sig() = default;

    // ------------------------------------------------------ constructors --
    static Sig constant(std::string value);
    static Sig unknown(ValueType type = ValueType::kAny,
                       UnknownReason reason = UnknownReason::kUnspecified,
                       std::string origin = {});
    static Sig concat(Sig a, Sig b);
    static Sig concat_all(std::vector<Sig> parts);
    static Sig alt(Sig a, Sig b);
    static Sig rep(Sig body);
    static Sig json_object();
    static Sig json_array();
    static Sig xml_element(std::string tag);

    [[nodiscard]] bool is_const() const { return kind == Kind::kConst; }
    [[nodiscard]] bool is_unknown() const { return kind == Kind::kUnknown; }
    /// True if this signature contains no constants at all (pure wildcard).
    [[nodiscard]] bool is_pure_wildcard() const;

    /// Structural equality. Provenance (`reason`/`origin`) is deliberately
    /// NOT compared: two segments with the same pattern are the same pattern
    /// no matter where they came from, and dedup/folding must not change
    /// when provenance is attached.
    bool operator==(const Sig& other) const;

    /// Sets (or merges) a JSON-object member.
    void set_member(const std::string& key, Sig value);
    [[nodiscard]] const Sig* member(const std::string& key) const;
    [[nodiscard]] Sig* member(const std::string& key);

    // -------------------------------------------------------- renderings --
    /// Regular expression (anchored use). JSON/XML sub-trees render as the
    /// regex of their canonical serialization.
    [[nodiscard]] std::string to_regex() const;

    /// Human-readable pattern: constants verbatim, unknowns as (.*) / [0-9]+,
    /// the paper's display style e.g. "(user=).*(&passwd=)(&api_type=json)".
    [[nodiscard]] std::string to_display() const;

    /// JSON-schema-like description for kJsonObject/kJsonArray trees.
    [[nodiscard]] text::Json to_json_schema() const;

    /// DTD for XML signature trees (paper §1: "Document Type Definition for
    /// XML ... JSON schema for JSON bodies").
    [[nodiscard]] std::string to_dtd() const;

    /// Provenance tree: every segment with its kind, pattern, origin tag and
    /// (for unknowns) reason code — the per-transaction `provenance` object
    /// of the report JSON and the data behind `extractocol --explain`.
    [[nodiscard]] text::Json to_provenance_json() const;

    /// Counts unknown leaves by reason into `out` (keyed by
    /// unknown_reason_name); returns the number of unknown leaves visited.
    std::size_t count_unknown_reasons(
        std::vector<std::pair<std::string, std::size_t>>& out) const;

    // --------------------------------------------------------- analytics --
    /// All constant keywords (JSON keys, XML tags/attributes, query-string
    /// keys) contained in this signature — the Fig. 7 metric.
    [[nodiscard]] std::vector<std::string> keywords() const;

    /// Total bytes of constant text (for signature-quality metrics).
    [[nodiscard]] std::size_t constant_bytes() const;

private:
    void collect_keywords(std::vector<std::string>& out, bool in_structure) const;
};

/// Normalized merge used at CFG confluence points: equal → either; otherwise
/// a deduplicated alternation (Fig. 4's ∨).
Sig merge_alt(Sig a, Sig b);

/// Alternation arm cap: past this many distinct branches the disjunction
/// stops carrying information and Sig::alt collapses it to an unknown with
/// reason kDisjunctionCapped. Sized well above anything the corpus produces,
/// so capping is an audit-visible safety valve, not a precision change.
inline constexpr std::size_t kMaxAltArms = 24;

/// Stamps `reason`/`origin` on every unknown leaf that does not yet carry a
/// reason (leaves with a recorded reason keep their more specific one).
void tag_unknowns(Sig& s, UnknownReason reason, const std::string& origin);

/// Loop-header widening: if `grown` extends `base` by a suffix, returns
/// concat(base, rep(suffix)); otherwise falls back to alternation. This is
/// the "identify the loop variant part ... mark the part can be repeated"
/// rule (§3.2).
Sig widen_loop(const Sig& base, const Sig& grown);

}  // namespace extractocol::sig
