// Quickstart: analyze an app binary (.xapk) end to end.
//
//   $ quickstart [path/to/app.xapk]
//
// With no argument it generates the bundled "radio reddit" corpus app,
// serializes it to the binary-only .xapk form (the analysis input — exactly
// the paper's setting: client binary only, no server, no source), runs
// Extractocol, and prints the reconstructed transactions, signatures, and
// dependency graph.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/analyzer.hpp"
#include "corpus/corpus.hpp"
#include "xapk/serialize.hpp"

using namespace extractocol;

int main(int argc, char** argv) {
    std::string xapk_text;
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        xapk_text = buffer.str();
        std::printf("analyzing %s\n\n", argv[1]);
    } else {
        // The binary-only round trip: build the app, keep only its .xapk.
        corpus::CorpusApp app = corpus::build_app("radio reddit");
        xapk_text = xapk::write_xapk(app.program);
        std::printf("analyzing bundled 'radio reddit' (%zu-byte .xapk)\n\n",
                    xapk_text.size());
    }

    core::Analyzer analyzer;  // default options: async heuristic on
    auto report = analyzer.analyze_xapk(xapk_text);
    if (!report.ok()) {
        std::fprintf(stderr, "analysis failed: %s\n", report.error().message.c_str());
        return 1;
    }

    std::printf("%s\n", report.value().to_text().c_str());
    std::printf("--- machine-readable form ---\n%s\n",
                report.value().to_json().dump_pretty().c_str());
    std::printf("\nanalysis took %.0f ms over %zu statements (%zu demarcation points, "
                "%.1f%% sliced)\n",
                report.value().stats.analysis_seconds * 1000,
                report.value().stats.total_statements, report.value().stats.dp_sites,
                100 * report.value().stats.slice_fraction());
    return 0;
}
