// Automated protocol testing (§2): "Application protocol analysis can
// potentially automate this process by generating messages exhaustively
// while following the dependency between message exchanges."
//
// This example turns an analysis report into a test plan: it topologically
// orders transactions by their dependency edges (logins before token-bearing
// requests), instantiates each signature, executes the plan against the
// app's server, and verifies every response matches the paired response
// signature.
#include <algorithm>
#include <cstdio>
#include <deque>

#include "core/analyzer.hpp"
#include "core/matcher.hpp"
#include "corpus/corpus.hpp"
#include "support/strings.hpp"

using namespace extractocol;

namespace {

/// Orders transaction indices so that dependency sources precede targets.
std::vector<std::size_t> dependency_order(const core::AnalysisReport& report) {
    std::size_t n = report.transactions.size();
    std::vector<std::size_t> indegree(n, 0);
    std::vector<std::vector<std::size_t>> out(n);
    for (const auto& d : report.dependencies) {
        out[d.from].push_back(d.to);
        ++indegree[d.to];
    }
    std::deque<std::size_t> ready;
    for (std::size_t i = 0; i < n; ++i) {
        if (indegree[i] == 0) ready.push_back(i);
    }
    std::vector<std::size_t> order;
    while (!ready.empty()) {
        std::size_t i = ready.front();
        ready.pop_front();
        order.push_back(i);
        for (std::size_t succ : out[i]) {
            if (--indegree[succ] == 0) ready.push_back(succ);
        }
    }
    for (std::size_t i = 0; i < n; ++i) {  // cycles: append leftovers
        if (std::find(order.begin(), order.end(), i) == order.end()) order.push_back(i);
    }
    return order;
}

/// Instantiates a signature into a concrete request, substituting values
/// harvested from earlier responses for dependency-fed fields.
http::Request instantiate(const core::ReportTransaction& sig,
                          const std::map<std::string, std::string>& harvest) {
    auto concretize = [&](std::string pattern) {
        pattern = strings::replace_all(pattern, "\\.", ".");
        pattern = strings::replace_all(pattern, "\\?", "?");
        for (const auto& [field, value] : harvest) {
            pattern = strings::replace_all(pattern, field + "=.*", field + "=" + value);
        }
        pattern = strings::replace_all(pattern, "=.*", "=test");
        pattern = strings::replace_all(pattern, "=[0-9]+", "=7");
        // Whole-URI wildcards and alternations: pick the first branch.
        auto alt = pattern.find('|');
        if (alt != std::string::npos && pattern.front() == '(') {
            pattern = pattern.substr(1, alt - 1);
        }
        pattern = strings::replace_all(pattern, ".*", "");
        pattern = strings::replace_all(pattern, "(", "");
        pattern = strings::replace_all(pattern, ")", "");
        return pattern;
    };
    http::Request request;
    request.method = sig.signature.method;
    auto uri = text::parse_uri(concretize(sig.uri_regex));
    if (uri.ok()) request.uri = std::move(uri).take();
    for (const auto& [name, value] : sig.signature.headers) {
        request.headers.push_back({name.is_const() ? name.text : "x-dynamic",
                                   value.is_const() ? value.text : "test"});
    }
    if (sig.signature.has_body) {
        request.body = concretize(sig.body_regex);
        request.body_kind = sig.signature.body_kind;
    }
    return request;
}

}  // namespace

int main() {
    std::printf("== protocol tester: dependency-ordered message generation ==\n\n");
    corpus::CorpusApp app = corpus::build_app("radio reddit");
    core::AnalysisReport report = core::Analyzer().analyze(app.program);
    core::TraceMatcher matcher(report);
    auto server = app.make_server();

    auto order = dependency_order(report);
    std::printf("test plan (%zu messages, dependency-ordered):\n", order.size());
    for (std::size_t i : order) {
        std::printf("  %s %s\n",
                    http::method_name(report.transactions[i].signature.method).data(),
                    report.transactions[i].uri_regex.c_str());
    }

    std::map<std::string, std::string> harvest;
    std::size_t sent = 0, response_ok = 0;
    for (std::size_t i : order) {
        const auto& sig = report.transactions[i];
        if (sig.signature.uri.is_pure_wildcard()) continue;  // response-derived URI
        http::Request request = instantiate(sig, harvest);
        if (request.uri.host.empty()) continue;
        http::Response response = server->handle(request);
        ++sent;

        // Harvest fields that later transactions depend on.
        auto doc = text::parse_json(response.body);
        if (doc.ok()) {
            for (const auto& d : report.dependencies) {
                if (d.from != i || d.response_field.empty()) continue;
                std::function<const text::Json*(const text::Json&)> find =
                    [&](const text::Json& v) -> const text::Json* {
                    if (const auto* m = v.find(d.response_field)) return m;
                    if (v.is_object()) {
                        for (const auto& [k, child] : v.members()) {
                            if (const auto* hit = find(child)) return hit;
                        }
                    }
                    return nullptr;
                };
                if (const text::Json* value = find(doc.value());
                    value && value->is_string()) {
                    // Field name on the request side: body:<key> / header:<n>.
                    std::string target = d.request_field;
                    auto colon = target.find(':');
                    if (colon != std::string::npos) target = target.substr(colon + 1);
                    harvest[target] = value->as_string();
                }
            }
        }

        // Validate the response against the paired response signature.
        if (sig.signature.has_response_body) {
            auto demanded = sig.signature.response_body.keywords();
            auto present = core::TraceMatcher::payload_keywords(response.body_kind,
                                                                response.body);
            std::set<std::string> have(present.begin(), present.end());
            bool ok = std::all_of(demanded.begin(), demanded.end(),
                                  [&](const std::string& k) { return have.count(k); });
            std::printf("  [%s] %s -> HTTP %d, response matches signature\n",
                        ok ? "ok" : "FAIL", request.start_line().c_str(),
                        response.status);
            if (ok) ++response_ok;
        } else {
            std::printf("  [--] %s -> HTTP %d (no response signature)\n",
                        request.start_line().c_str(), response.status);
        }
    }
    std::printf("\nsent %zu generated messages; %zu paired responses validated; "
                "harvested %zu dependency values\n",
                sent, response_ok, harvest.size());
    return sent > 0 && response_ok > 0 ? 0 : 1;
}
