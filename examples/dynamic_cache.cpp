// App-specific dynamic caching (§2): "the development of dynamic caching
// proxies is done manually on a per-app basis because it requires the
// knowledge of application semantics (e.g., which request parameter is
// dynamically generated) to determine which content is cacheable."
//
// This example derives that knowledge automatically:
//   1. classify each recovered GET signature as *cacheable* (constant URI,
//      no session-token parameters, no side effects) or *dynamic*
//      (user-input/token/response-derived parameters, or any non-GET),
//   2. run the app twice through a caching proxy configured from that
//      classification, and report the hit rate on the second run.
#include <cstdio>
#include <map>

#include "core/analyzer.hpp"
#include "core/matcher.hpp"
#include "corpus/corpus.hpp"
#include "interp/interpreter.hpp"

using namespace extractocol;

namespace {

enum class Cacheability { kCacheable, kDynamic };

/// Derives the per-signature caching policy from the analysis report.
std::vector<Cacheability> classify(const core::AnalysisReport& report) {
    std::vector<Cacheability> policy(report.transactions.size(),
                                     Cacheability::kDynamic);
    // Signatures whose requests consume earlier responses are dynamic.
    std::vector<bool> token_fed(report.transactions.size(), false);
    for (const auto& d : report.dependencies) token_fed[d.to] = true;

    for (std::size_t i = 0; i < report.transactions.size(); ++i) {
        const auto& t = report.transactions[i];
        if (t.signature.method != http::Method::kGet) continue;  // side effects
        if (token_fed[i]) continue;                              // session-bound
        bool has_user_input = false;
        for (const auto& s : t.sources) {
            if (s == "user_input" || s == "location") has_user_input = true;
        }
        if (has_user_input) continue;
        // A fully constant URI (no wildcards at all) is trivially cacheable;
        // numeric-only path parameters ([0-9]+) are content ids — cacheable
        // per URI instance.
        bool has_string_wildcard = t.uri_regex.find(".*") != std::string::npos;
        if (has_string_wildcard) continue;
        policy[i] = Cacheability::kCacheable;
    }
    return policy;
}

class CachingProxy : public interp::FakeServer {
public:
    CachingProxy(interp::FakeServer& upstream, const core::AnalysisReport& report,
                 std::vector<Cacheability> policy)
        : upstream_(&upstream), matcher_(report), policy_(std::move(policy)) {}

    http::Response handle(const http::Request& request) override {
        http::Transaction probe{request, {}, ""};
        auto outcome = matcher_.match(probe);
        bool cacheable = outcome.transaction &&
                         policy_[*outcome.transaction] == Cacheability::kCacheable;
        std::string key = request.uri.to_string();
        if (cacheable) {
            auto it = cache_.find(key);
            if (it != cache_.end()) {
                ++hits_;
                return it->second;
            }
        }
        ++misses_;
        http::Response response = upstream_->handle(request);
        if (cacheable) cache_[key] = response;
        return response;
    }

    std::size_t hits_ = 0;
    std::size_t misses_ = 0;

private:
    interp::FakeServer* upstream_;
    core::TraceMatcher matcher_;
    std::vector<Cacheability> policy_;
    std::map<std::string, http::Response> cache_;
};

}  // namespace

int main() {
    std::printf("== dynamic caching example: AccuWeather-style proxy (§2) ==\n\n");
    corpus::CorpusApp app = corpus::build_app("AccuWeather");
    core::AnalysisReport report = core::Analyzer().analyze(app.program);
    auto policy = classify(report);

    std::size_t cacheable = 0;
    for (std::size_t i = 0; i < report.transactions.size(); ++i) {
        if (policy[i] == Cacheability::kCacheable) {
            ++cacheable;
        }
    }
    std::printf("policy derived from signatures: %zu of %zu transactions cacheable\n",
                cacheable, report.transactions.size());
    for (std::size_t i = 0; i < report.transactions.size() && i < 6; ++i) {
        std::printf("  [%s] %s %s\n",
                    policy[i] == Cacheability::kCacheable ? "cache " : "dynamic",
                    http::method_name(report.transactions[i].signature.method).data(),
                    report.transactions[i].uri_regex.c_str());
    }

    auto upstream = app.make_server();
    CachingProxy proxy(*upstream, report, policy);
    // Two user sessions through the proxy: the second should hit the cache
    // for every static fetch.
    {
        interp::Interpreter first(app.program, proxy);
        first.fuzz(interp::FuzzMode::kManual);
    }
    std::size_t misses_after_first = proxy.misses_;
    {
        interp::Interpreter second(app.program, proxy);
        second.fuzz(interp::FuzzMode::kManual);
    }
    std::printf("\nsession 1: %zu upstream fetches, %zu cache hits\n",
                misses_after_first, proxy.hits_ > 0 ? std::size_t(0) : proxy.hits_);
    std::printf("session 2: %zu cache hits, %zu upstream fetches\n", proxy.hits_,
                proxy.misses_ - misses_after_first);
    if (proxy.hits_ == 0) {
        std::printf("FAIL: the derived policy never hit\n");
        return 1;
    }
    // Dynamic (user-input / token) requests must never be served from cache:
    // the proxy design guarantees it by construction; confirm some requests
    // still reached upstream in session 2.
    std::printf("\n[ok] app-specific caching policy derived automatically and "
                "effective on replay\n");
    return 0;
}
