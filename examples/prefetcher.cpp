// Application acceleration (§2, Fig. 1): build a *prefetcher* from analysis
// output. The dependency graph tells us which response fields become future
// request URIs; a proxy that watches responses can fetch those URIs before
// the app asks.
//
// This example runs the TED scenario end to end:
//   1. analyze the TED app stand-in,
//   2. derive prefetch rules from the dependency graph
//      (response field F of signature S  ->  future GET at F's value),
//   3. replay the app against its server through the prefetching proxy and
//      report how many requests were served from the prefetch cache.
#include <cstdio>
#include <map>

#include "core/analyzer.hpp"
#include "core/matcher.hpp"
#include "corpus/corpus.hpp"
#include "interp/interpreter.hpp"

using namespace extractocol;

namespace {

struct PrefetchRule {
    std::size_t source_signature;   // index into report.transactions
    std::string response_field;     // field whose value is a future URI
};

/// A caching proxy between the app and the real server that applies the
/// analysis-derived prefetch rules.
class PrefetchingProxy : public interp::FakeServer {
public:
    PrefetchingProxy(interp::FakeServer& upstream, const core::AnalysisReport& report,
                     std::vector<PrefetchRule> rules)
        : upstream_(&upstream), matcher_(report), rules_(std::move(rules)) {}

    http::Response handle(const http::Request& request) override {
        std::string uri = request.uri.to_string();
        auto it = cache_.find(uri);
        if (it != cache_.end()) {
            ++cache_hits_;
            return it->second;
        }
        ++upstream_fetches_;
        http::Response response = upstream_->handle(request);
        apply_rules(request, response);
        return response;
    }

    [[nodiscard]] std::size_t cache_hits() const { return cache_hits_; }
    [[nodiscard]] std::size_t upstream_fetches() const { return upstream_fetches_; }
    [[nodiscard]] std::size_t prefetched() const { return cache_.size(); }

private:
    void apply_rules(const http::Request& request, const http::Response& response) {
        http::Transaction txn{request, response, ""};
        auto outcome = matcher_.match(txn);
        if (!outcome.transaction) return;
        auto body = text::parse_json(response.body);
        if (!body.ok()) return;
        for (const auto& rule : rules_) {
            if (rule.source_signature != *outcome.transaction) continue;
            const text::Json* field = find_field(body.value(), rule.response_field);
            if (!field || !field->is_string()) continue;
            auto uri = text::parse_uri(field->as_string());
            if (!uri.ok()) continue;
            http::Request prefetch;
            prefetch.method = http::Method::kGet;
            prefetch.uri = std::move(uri).take();
            cache_[prefetch.uri.to_string()] = upstream_->handle(prefetch);
        }
    }

    static const text::Json* find_field(const text::Json& doc, const std::string& key) {
        if (const text::Json* direct = doc.find(key)) return direct;
        if (doc.is_object()) {
            for (const auto& [k, v] : doc.members()) {
                if (const text::Json* nested = find_field(v, key)) return nested;
            }
        }
        return nullptr;
    }

    interp::FakeServer* upstream_;
    core::TraceMatcher matcher_;
    std::vector<PrefetchRule> rules_;
    std::map<std::string, http::Response> cache_;
    std::size_t cache_hits_ = 0;
    std::size_t upstream_fetches_ = 0;
};

}  // namespace

int main() {
    std::printf("== prefetcher example: TED application acceleration ==\n\n");
    corpus::CorpusApp app = corpus::build_app("TED");
    core::AnalysisReport report = core::Analyzer().analyze(app.program);

    // Derive prefetch rules: dependency edges whose target URI is fully
    // response-derived (GET with a wildcard URI).
    std::vector<PrefetchRule> rules;
    for (const auto& d : report.dependencies) {
        const auto& target = report.transactions[d.to];
        if (target.signature.method != http::Method::kGet) continue;
        if (!target.signature.uri.is_pure_wildcard()) continue;
        if (d.response_field.empty()) continue;
        rules.push_back({d.from, d.response_field});
        std::printf("prefetch rule: when a response matches #%zu, fetch the URI in "
                    "its \"%s\" field (feeds #%zu, consumed by %s)\n",
                    d.from + 1, d.response_field.c_str(), d.to + 1,
                    target.consumers.empty() ? "app" : target.consumers[0].c_str());
    }
    if (rules.empty()) {
        std::printf("no prefetch rules derived\n");
        return 1;
    }

    auto upstream = app.make_server();
    PrefetchingProxy proxy(*upstream, report, rules);
    interp::Interpreter interpreter(app.program, proxy);
    interpreter.fuzz(interp::FuzzMode::kManual);

    std::printf("\nreplay through proxy: %zu upstream fetches, %zu prefetched objects, "
                "%zu requests served from prefetch cache\n",
                proxy.upstream_fetches(), proxy.prefetched(), proxy.cache_hits());
    if (proxy.cache_hits() == 0) {
        std::printf("FAIL: prefetcher never hit\n");
        return 1;
    }
    std::printf("[ok] ad/media fetches were served before the app asked\n");
    return 0;
}
