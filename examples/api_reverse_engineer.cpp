// REST-API reverse engineering (§5.3): reproduce the Kayak study, including
// the 73-line replay client the paper wrote in Python. We scope the analysis
// to com.kayak classes, print the recovered private API, then *use* it: a
// generated client performs the authajax -> flight/start -> flight/poll
// session against the fake service and retrieves fares — including the
// app-gating User-Agent header without which the service refuses access.
#include <cstdio>

#include "core/analyzer.hpp"
#include "corpus/corpus.hpp"
#include "interp/interpreter.hpp"
#include "support/strings.hpp"

using namespace extractocol;

namespace {

/// The fare service wrapper: enforces the User-Agent gate the paper found.
class GatedKayakService : public interp::FakeServer {
public:
    explicit GatedKayakService(std::unique_ptr<interp::FakeServer> inner)
        : inner_(std::move(inner)) {}

    http::Response handle(const http::Request& request) override {
        const std::string* agent = request.header("User-Agent");
        if (!agent || agent->find("kayakandroid") == std::string::npos) {
            http::Response denied;
            denied.status = 403;
            denied.body_kind = http::BodyKind::kText;
            denied.body = "unauthorized platform";
            return denied;
        }
        return inner_->handle(request);
    }

private:
    std::unique_ptr<interp::FakeServer> inner_;
};

/// Fills a signature's wildcards with example values to produce a concrete
/// request — the "generate HTTPS requests based on our signatures" step.
http::Request instantiate(const core::ReportTransaction& sig,
                          const std::vector<std::pair<std::string, std::string>>& fills) {
    http::Request request;
    request.method = sig.signature.method;
    // Build the URI from the signature's display pattern: constants stay,
    // wildcards take fill values by position of their key.
    std::string uri = sig.uri_regex;
    uri = strings::replace_all(uri, "\\.", ".");
    uri = strings::replace_all(uri, "\\?", "?");
    // Replace each "key=.*"-ish wildcard with a fill.
    for (const auto& [key, value] : fills) {
        uri = strings::replace_all(uri, key + "=.*", key + "=" + value);
        uri = strings::replace_all(uri, key + "=[0-9]+", key + "=" + value);
    }
    // Drop any leftover wildcards.
    uri = strings::replace_all(uri, ".*", "x");
    uri = strings::replace_all(uri, "[0-9]+", "1");
    request.uri = text::parse_uri(uri).value_or(text::Uri{});
    for (const auto& [name, value] : sig.signature.headers) {
        if (name.is_const() && value.is_const()) {
            request.headers.push_back({name.text, value.text});
        }
    }
    if (sig.signature.has_body) {
        std::string body = strings::replace_all(sig.body_regex, "\\.", ".");
        for (const auto& [key, value] : fills) {
            body = strings::replace_all(body, key + "=.*", key + "=" + value);
            body = strings::replace_all(body, key + "=[0-9]+", key + "=" + value);
        }
        body = strings::replace_all(body, ".*", "x");
        body = strings::replace_all(body, "[0-9]+", "1");
        request.body = body;
        request.body_kind = sig.signature.body_kind;
    }
    return request;
}

const core::ReportTransaction* find_sig(const core::AnalysisReport& report,
                                        const char* fragment) {
    for (const auto& t : report.transactions) {
        std::string unescaped = strings::replace_all(t.uri_regex, "\\.", ".");
        if (unescaped.find(fragment) != std::string::npos) return &t;
    }
    return nullptr;
}

}  // namespace

int main() {
    std::printf("== Kayak private-API reverse engineering (§5.3) ==\n\n");
    corpus::CorpusApp app = corpus::build_app("KAYAK");
    core::AnalyzerOptions options;
    options.class_scope = "com.kayak";
    core::AnalysisReport report = core::Analyzer(options).analyze(app.program);
    std::printf("recovered %zu API transactions; flight-search subset:\n",
                report.transactions.size());
    for (const auto& t : report.transactions) {
        if (t.uri_regex.find("flight") != std::string::npos ||
            t.uri_regex.find("authajax") != std::string::npos) {
            std::printf("  %s %s\n", http::method_name(t.signature.method).data(),
                        t.uri_regex.c_str());
        }
    }

    // ---- the replay client (the paper's 73-LOC Python script) ----
    std::printf("\n-- replay session against the gated fare service --\n");
    GatedKayakService service(app.make_server());

    const auto* auth_sig = find_sig(report, "/k/authajax");
    const auto* start_sig = find_sig(report, "/flight/start");
    const auto* poll_sig = find_sig(report, "/flight/poll");
    if (!auth_sig || !start_sig || !poll_sig) {
        std::printf("FAIL: required signatures missing\n");
        return 1;
    }

    // Step 0: without the recovered User-Agent the service refuses.
    {
        http::Request bare = instantiate(*auth_sig, {});
        bare.headers.clear();
        http::Response denied = service.handle(bare);
        std::printf("without User-Agent: HTTP %d (%s)\n", denied.status,
                    denied.body.c_str());
        if (denied.status != 403) return 1;
    }

    // Step 1: /k/authajax with action=registerandroid.
    http::Request auth = instantiate(*auth_sig, {{"uuid", "dev-42"},
                                                 {"hash", "cafe"},
                                                 {"model", "Pixel"},
                                                 {"os", "6.0"},
                                                 {"locale", "en_US"},
                                                 {"tz", "UTC"}});
    http::Response auth_resp = service.handle(auth);
    std::printf("POST /k/authajax -> HTTP %d, body %s\n", auth_resp.status,
                auth_resp.body.c_str());
    auto auth_doc = text::parse_json(auth_resp.body);
    std::string sid = auth_doc.ok() && auth_doc.value().find("sid")
                          ? auth_doc.value().find("sid")->as_string()
                          : "";

    // Step 2: /flight/start with the session id.
    http::Request start = instantiate(
        *start_sig, {{"cabin", "economy"}, {"origin", "SFO"}, {"destination", "ICN"},
                     {"depart_date", "2016-12-12"}, {"_sid_", sid}});
    http::Response start_resp = service.handle(start);
    std::printf("GET /flight/start -> HTTP %d, body %s\n", start_resp.status,
                start_resp.body.c_str());
    auto start_doc = text::parse_json(start_resp.body);
    std::string searchid = start_doc.ok() && start_doc.value().find("searchid")
                               ? start_doc.value().find("searchid")->as_string()
                               : "";

    // Step 3: /flight/poll retrieves the fares.
    http::Request poll =
        instantiate(*poll_sig, {{"searchid", searchid}, {"currency", "USD"}});
    http::Response poll_resp = service.handle(poll);
    std::printf("GET /flight/poll  -> HTTP %d\n", poll_resp.status);
    auto fares = text::parse_json(poll_resp.body);
    if (!fares.ok() || !fares.value().find("legs")) {
        std::printf("FAIL: no fares retrieved\n");
        return 1;
    }
    std::printf("fares: %s\n", fares.value().find("legs")->dump().c_str());
    std::printf("\n[ok] reverse-engineered API session retrieved flight fares\n");
    return 0;
}
